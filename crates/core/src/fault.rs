//! Deterministic fault injection for the context layer.
//!
//! The fail-safe semantics of [`crate::env::Fetched`] are only worth
//! anything if they are exercised: a context fetch that *errors* (not
//! one that is benignly absent) is exactly the window an adversary aims
//! for — a corrupted stack the unwinder cannot walk, an inode raced
//! away by the VFS, a lost STATE dictionary. [`FaultyEnv`] wraps any
//! [`EvalEnv`] and converts a configurable, seed-deterministic fraction
//! of `try_*` fetches into [`Fetched::Failed`] results, so soak tests
//! and the `table6_faults` bench can measure how the engine degrades:
//! how many decisions ran degraded, whether fail-closed defaults held
//! every exploit rule, and what the policy machinery costs.
//!
//! Randomness is a hand-rolled xorshift64* stream (no external crates,
//! no wall clock), so a `(seed, workload)` pair always injects the same
//! fault sequence — failures found in CI reproduce locally byte for
//! byte. The injector's state is atomic, so one injector can drive many
//! threads; per-thread determinism then holds per interleaving, and the
//! aggregate fault *rate* holds regardless.

use std::sync::atomic::{AtomicU64, Ordering};

use pf_mac::MacPolicy;
use pf_types::{Pid, ProgramId, SecId, Uid};

use crate::env::{CtxError, EvalEnv, Fetched, ObjectInfo, SignalInfo};

/// Per-channel fault rates (each `0.0 ..= 1.0`) and the PRNG seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Probability a stack unwind fails ([`CtxError::UnwindFault`]).
    pub unwind_fail: f64,
    /// Probability an object fetch fails ([`CtxError::ObjectFault`]).
    pub object_fail: f64,
    /// Probability the symlink-target owner lookup races
    /// ([`CtxError::LinkRace`]).
    pub link_fail: f64,
    /// Probability a STATE-dictionary read is lost
    /// ([`CtxError::StateLoss`]).
    pub state_fail: f64,
    /// Probability a virtual-clock read fails
    /// ([`CtxError::ClockFault`]) — the channel RATELIMIT/QUOTA
    /// targets depend on.
    pub clock_fail: f64,
    /// Probability a subject-origin (taint label) read fails
    /// ([`CtxError::OriginFault`]) — the channel `--origin`
    /// post-compromise containment rules depend on.
    pub origin_fail: f64,
}

impl FaultConfig {
    /// No faults at all (useful as a bench baseline).
    pub fn off(seed: u64) -> Self {
        Self::uniform(seed, 0.0)
    }

    /// The same fault rate on every channel.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            unwind_fail: rate,
            object_fail: rate,
            link_fail: rate,
            state_fail: rate,
            clock_fail: rate,
            origin_fail: rate,
        }
    }
}

/// A snapshot of how many faults the injector has delivered, per
/// channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Injected [`CtxError::UnwindFault`]s.
    pub unwind: u64,
    /// Injected [`CtxError::ObjectFault`]s.
    pub object: u64,
    /// Injected [`CtxError::LinkRace`]s.
    pub link: u64,
    /// Injected [`CtxError::StateLoss`]es.
    pub state: u64,
    /// Injected [`CtxError::ClockFault`]s.
    pub clock: u64,
    /// Injected [`CtxError::OriginFault`]s.
    pub origin: u64,
}

impl FaultStats {
    /// Total injected faults across every channel.
    pub fn total(&self) -> u64 {
        self.unwind + self.object + self.link + self.state + self.clock + self.origin
    }
}

/// The seeded fault source: rolls one xorshift64* stream and tallies
/// what it injects.
///
/// All state is atomic, so the injector is shared by `&` reference —
/// one injector can serve every thread of a soak test (and sit inside
/// a `Kernel` without making it `!Sync`).
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: AtomicU64,
    unwind: AtomicU64,
    object: AtomicU64,
    link: AtomicU64,
    state: AtomicU64,
    clock: AtomicU64,
    origin: AtomicU64,
}

impl FaultInjector {
    /// Creates an injector for the given configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector {
            cfg,
            // xorshift64* requires a non-zero state; fold the seed
            // through an odd constant so seed 0 is still usable.
            rng: AtomicU64::new(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
            unwind: AtomicU64::new(0),
            object: AtomicU64::new(0),
            link: AtomicU64::new(0),
            state: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            origin: AtomicU64::new(0),
        }
    }

    /// The configuration this injector was built with.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// How many faults have been injected so far, per channel.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            unwind: self.unwind.load(Ordering::Relaxed),
            object: self.object.load(Ordering::Relaxed),
            link: self.link.load(Ordering::Relaxed),
            state: self.state.load(Ordering::Relaxed),
            clock: self.clock.load(Ordering::Relaxed),
            origin: self.origin.load(Ordering::Relaxed),
        }
    }

    /// Advances the xorshift64* stream by one step.
    fn next(&self) -> u64 {
        let mut cur = self.rng.load(Ordering::Relaxed);
        loop {
            let mut x = cur;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            match self
                .rng
                .compare_exchange_weak(cur, x, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return x.wrapping_mul(0x2545_F491_4F6C_DD1D),
                Err(seen) => cur = seen,
            }
        }
    }

    /// One Bernoulli trial at `rate`, consuming one PRNG step only for
    /// rates strictly between 0 and 1.
    fn roll(&self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let threshold = (rate * (1u64 << 32) as f64) as u64;
        (self.next() >> 32) < threshold
    }

    fn roll_unwind(&self) -> bool {
        let hit = self.roll(self.cfg.unwind_fail);
        if hit {
            self.unwind.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn roll_object(&self) -> bool {
        let hit = self.roll(self.cfg.object_fail);
        if hit {
            self.object.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn roll_link(&self) -> bool {
        let hit = self.roll(self.cfg.link_fail);
        if hit {
            self.link.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn roll_state(&self) -> bool {
        let hit = self.roll(self.cfg.state_fail);
        if hit {
            self.state.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn roll_clock(&self) -> bool {
        let hit = self.roll(self.cfg.clock_fail);
        if hit {
            self.clock.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn roll_origin(&self) -> bool {
        let hit = self.roll(self.cfg.origin_fail);
        if hit {
            self.origin.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }
}

/// An [`EvalEnv`] wrapper that injects fetch failures on the `try_*`
/// paths.
///
/// The roll happens *before* delegating: an injected fault models the
/// fetch machinery itself erroring, so the inner environment is never
/// consulted on a faulted fetch (just as a crashed unwinder returns no
/// frames). Everything else — identity, MAC policy, the STATE and cache
/// write paths — passes straight through.
pub struct FaultyEnv<'a> {
    inner: &'a mut dyn EvalEnv,
    injector: &'a FaultInjector,
}

impl<'a> FaultyEnv<'a> {
    /// Wraps `inner`, drawing faults from `injector`.
    pub fn new(inner: &'a mut dyn EvalEnv, injector: &'a FaultInjector) -> Self {
        FaultyEnv { inner, injector }
    }
}

impl EvalEnv for FaultyEnv<'_> {
    fn subject_sid(&self) -> SecId {
        self.inner.subject_sid()
    }

    fn program(&self) -> ProgramId {
        self.inner.program()
    }

    fn pid(&self) -> Pid {
        self.inner.pid()
    }

    fn unwind_entrypoint(&mut self) -> Option<(ProgramId, u64)> {
        self.inner.unwind_entrypoint()
    }

    fn object(&self) -> Option<ObjectInfo> {
        self.inner.object()
    }

    fn link_target_owner(&mut self) -> Option<Uid> {
        self.inner.link_target_owner()
    }

    fn syscall_arg(&self, idx: usize) -> u64 {
        self.inner.syscall_arg(idx)
    }

    fn signal(&self) -> Option<SignalInfo> {
        self.inner.signal()
    }

    fn mac(&self) -> &MacPolicy {
        self.inner.mac()
    }

    fn program_name(&self, id: ProgramId) -> String {
        self.inner.program_name(id)
    }

    fn state_get(&self, key: u64) -> Option<u64> {
        self.inner.state_get(key)
    }

    fn state_set(&mut self, key: u64, value: u64) {
        self.inner.state_set(key, value)
    }

    fn state_unset(&mut self, key: u64) {
        self.inner.state_unset(key)
    }

    fn cache_get(&self, slot: u8) -> Option<u64> {
        self.inner.cache_get(slot)
    }

    fn cache_put(&mut self, slot: u8, value: u64) {
        self.inner.cache_put(slot, value)
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }

    fn interp_frame(&self) -> Option<(String, u32)> {
        self.inner.interp_frame()
    }

    fn try_unwind_entrypoint(&mut self) -> Fetched<(ProgramId, u64)> {
        if self.injector.roll_unwind() {
            return Fetched::Failed(CtxError::UnwindFault);
        }
        self.inner.try_unwind_entrypoint()
    }

    fn try_object(&self) -> Fetched<ObjectInfo> {
        if self.injector.roll_object() {
            return Fetched::Failed(CtxError::ObjectFault);
        }
        self.inner.try_object()
    }

    fn try_link_target_owner(&mut self) -> Fetched<Uid> {
        if self.injector.roll_link() {
            return Fetched::Failed(CtxError::LinkRace);
        }
        self.inner.try_link_target_owner()
    }

    fn try_signal(&self) -> Fetched<SignalInfo> {
        self.inner.try_signal()
    }

    fn try_state_get(&self, key: u64) -> Fetched<u64> {
        if self.injector.roll_state() {
            return Fetched::Failed(CtxError::StateLoss);
        }
        self.inner.try_state_get(key)
    }

    fn try_now(&self) -> Fetched<u64> {
        if self.injector.roll_clock() {
            return Fetched::Failed(CtxError::ClockFault);
        }
        self.inner.try_now()
    }

    fn subject_origin(&self) -> Option<u64> {
        self.inner.subject_origin()
    }

    fn try_subject_origin(&mut self) -> Fetched<u64> {
        if self.injector.roll_origin() {
            return Fetched::Failed(CtxError::OriginFault);
        }
        self.inner.try_subject_origin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_full_rates_are_exact() {
        let off = FaultInjector::new(FaultConfig::off(7));
        let on = FaultInjector::new(FaultConfig::uniform(7, 1.0));
        for _ in 0..1000 {
            assert!(!off.roll_unwind());
            assert!(on.roll_unwind());
        }
        assert_eq!(off.stats().total(), 0);
        assert_eq!(on.stats().unwind, 1000);
    }

    #[test]
    fn stream_is_seed_deterministic() {
        let a = FaultInjector::new(FaultConfig::uniform(42, 0.3));
        let b = FaultInjector::new(FaultConfig::uniform(42, 0.3));
        let c = FaultInjector::new(FaultConfig::uniform(43, 0.3));
        let seq = |inj: &FaultInjector| (0..256).map(|_| inj.roll_object()).collect::<Vec<_>>();
        let sa = seq(&a);
        assert_eq!(sa, seq(&b), "same seed, same fault sequence");
        assert_ne!(sa, seq(&c), "different seed diverges");
    }

    #[test]
    fn rate_is_respected_within_tolerance() {
        let inj = FaultInjector::new(FaultConfig::uniform(1234, 0.10));
        let n = 100_000;
        for _ in 0..n {
            inj.roll_unwind();
        }
        let hit = inj.stats().unwind as f64 / n as f64;
        assert!(
            (hit - 0.10).abs() < 0.01,
            "10% nominal rate measured at {hit}"
        );
    }

    #[test]
    fn channels_draw_from_one_stream_but_tally_separately() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 9,
            unwind_fail: 1.0,
            object_fail: 0.0,
            link_fail: 1.0,
            state_fail: 0.0,
            clock_fail: 1.0,
            origin_fail: 1.0,
        });
        assert!(inj.roll_unwind());
        assert!(!inj.roll_object());
        assert!(inj.roll_link());
        assert!(!inj.roll_state());
        assert!(inj.roll_clock());
        assert!(inj.roll_origin());
        let s = inj.stats();
        assert_eq!(
            (s.unwind, s.object, s.link, s.state, s.clock, s.origin),
            (1, 0, 1, 0, 1, 1)
        );
    }
}
