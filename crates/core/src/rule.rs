//! Rule structure: default matches, match modules, targets.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pf_types::{LabelSet, LsmOperation, ProgramId};

use crate::context::CtxField;
use crate::ratelimit::{ExceedPolicy, PerKey, ThrottleCell};
use crate::value::ValueExpr;

/// The default matches of Table 3: `-s`, `-d`, `-i`, `-o`, `-p` and the
/// resource identifier.
///
/// A `None` field matches anything, exactly like an omitted `iptables`
/// selector.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DefaultMatches {
    /// `-s`: subject (process) label set.
    pub subject: Option<LabelSet>,
    /// `-d`: object (resource) label set.
    pub object: Option<LabelSet>,
    /// `-p`: the program/binary containing the entrypoint.
    pub program: Option<ProgramId>,
    /// `-i`: entrypoint program counter, relative to the binary base
    /// (handling ASLR, Section 5.2).
    pub entrypoint_pc: Option<u64>,
    /// `-o`: the LSM operation.
    pub op: Option<LsmOperation>,
    /// Explicit resource identifier (inode/signal folded to `u64`).
    pub resource: Option<u64>,
    /// `--origin`: minimum subject origin (taint) level. The selector
    /// matches when the subject's monotone origin is at or above this
    /// level — the post-compromise predicate of the OAMAC adversary
    /// model. Origin is part of the verdict-cache key, so the selector
    /// stays key-determined (cacheable).
    pub origin: Option<u64>,
}

impl DefaultMatches {
    /// Returns the entrypoint key `(program, pc)` when both halves are
    /// present — the condition for placement in an entrypoint-specific
    /// chain (Section 4.3).
    pub fn entrypoint(&self) -> Option<(ProgramId, u64)> {
        match (self.program, self.entrypoint_pc) {
            (Some(p), Some(pc)) => Some((p, pc)),
            _ => None,
        }
    }
}

/// Extensible match modules (`-m name options`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchModule {
    /// `-m STATE --key K --cmp V [--nequal]`: compare a per-process
    /// STATE-dictionary entry. A missing key never matches.
    State {
        /// Dictionary key.
        key: u64,
        /// Comparand (literal or context reference).
        cmp: ValueExpr,
        /// `--nequal` inverts the comparison.
        negate: bool,
    },
    /// `-m SIGNAL_MATCH`: the delivered signal has a handler installed
    /// and is not unblockable (rule R10).
    SignalMatch,
    /// `-m SYSCALL_ARGS --arg N --equal V [--nequal]` (rule R12).
    SyscallArgs {
        /// Argument index (0 = syscall number).
        arg: u8,
        /// Comparand.
        cmp: ValueExpr,
        /// `--nequal` inverts the comparison.
        negate: bool,
    },
    /// `-m COMPARE --v1 A --v2 B [--nequal]`: compare two context values
    /// (rule R8's owner-match check).
    Compare {
        /// Left operand.
        v1: ValueExpr,
        /// Right operand.
        v2: ValueExpr,
        /// `--nequal` inverts the comparison.
        negate: bool,
    },
    /// `-m ADV_ACCESS [--write|--read] [--inaccessible]`: match on the
    /// object's adversary accessibility (used by generated safe_open and
    /// untrusted-search-path rules).
    AdvAccess {
        /// `true` = integrity (write) accessibility, `false` = secrecy.
        write: bool,
        /// The accessibility value required for the match.
        want: bool,
    },
    /// `-m OWNER --uid N [--nequal]`: match the object's DAC owner.
    /// Complements label matching where DAC identity is the natural
    /// resource attribute (the paper notes DAC labels were an option for
    /// identifying resources in rules; SELinux labels were chosen for
    /// granularity — both are supported here).
    Owner {
        /// Required owner uid.
        uid: u64,
        /// `--nequal` inverts the comparison.
        negate: bool,
    },
    /// `-m INTERP --script /path [--line N]`: match the innermost
    /// interpreter-level frame — the *script* making the request, as
    /// reported by the in-kernel interpreter backtraces of Section 4.4.
    /// Lets distributors scope a rule to one PHP/Python/Bash script
    /// rather than to every script the interpreter runs.
    Interp {
        /// Required script path.
        script: String,
        /// Optional required line number of the call.
        line: Option<u32>,
    },
    /// `-m CALLER --program /path`: match the *main program binary* of
    /// the calling process, independently of the entrypoint frame.
    ///
    /// This is the paper's future-work answer to library-entrypoint
    /// false positives (Section 6.3.1: "libraries are called by a
    /// variety of programs in different environments … these rules must
    /// be predicated on the environment in which the library is used"):
    /// a rule can bind a shared-library entrypoint (`-p lib -i pc`) to
    /// one specific hosting program.
    Caller {
        /// The required main-program binary.
        program: ProgramId,
    },
}

/// What a rule does when a context field it needs *failed* to fetch
/// (`--ctx-missing`), as opposed to being benignly absent.
///
/// Benign absence keeps its historical meaning — the selector simply
/// does not match. A *failed* fetch (see [`crate::env::Fetched`]) is the
/// degraded case this policy governs:
///
/// * `Skip` — treat the rule as not matching and continue (fail-open;
///   the engine default for non-DROP rules);
/// * `Match` — treat the failed selector as satisfied and keep checking
///   the rule's other selectors (conservative matching);
/// * `Drop` — deny the operation immediately, attributed to this rule
///   (fail-closed; the engine default for DROP rules).
///
/// Any of the three marks the decision *degraded* for metrics/TRACE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtxPolicy {
    /// Fail open: the rule does not match.
    Skip,
    /// Conservative: the failed selector counts as satisfied.
    Match,
    /// Fail closed: deny immediately.
    Drop,
}

impl CtxPolicy {
    /// The `--ctx-missing` keyword for this policy.
    pub fn name(self) -> &'static str {
        match self {
            CtxPolicy::Skip => "skip",
            CtxPolicy::Match => "match",
            CtxPolicy::Drop => "drop",
        }
    }

    /// Parses a `--ctx-missing` keyword.
    pub fn parse(tok: &str) -> Option<CtxPolicy> {
        Some(match tok {
            "skip" => CtxPolicy::Skip,
            "match" => CtxPolicy::Match,
            "drop" => CtxPolicy::Drop,
            _ => return None,
        })
    }
}

/// Targets (`-j`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// Terminal: block the access.
    Drop,
    /// Terminal: allow the access immediately.
    Accept,
    /// Non-terminal: fall through to the next rule (useful with side
    /// effects such as LOG).
    Continue,
    /// Leave the current chain (top level: default policy applies).
    Return,
    /// Jump into a user-defined chain.
    Jump(String),
    /// `-j STATE --set --key K --value V`: record state, continue.
    StateSet {
        /// Dictionary key.
        key: u64,
        /// Stored value (often a context reference like `C_INO`).
        value: ValueExpr,
    },
    /// `-j STATE --unset --key K`: clear state, continue.
    StateUnset {
        /// Dictionary key.
        key: u64,
    },
    /// `-j LOG [--tag T]`: emit a JSON log record, continue.
    Log {
        /// Free-form tag carried in the record.
        tag: String,
    },
    /// `-j TRACE`: non-terminal. Once a packet hits a TRACE rule, every
    /// subsequent rule it traverses in the same invocation emits a
    /// structured trace event into the engine's ring buffer — the
    /// iptables TRACE semantics, adapted to one hook invocation.
    Trace,
    /// `-j RATELIMIT --rate N --burst M [--per K] [--exceed P]`: a
    /// keyed token bucket. Within budget the rule continues; over
    /// budget the `--exceed` policy decides (deny by default).
    RateLimit {
        /// Tokens accrued per [`crate::ratelimit::RATE_PERIOD`] ticks.
        rate: u64,
        /// Bucket capacity in whole tokens.
        burst: u64,
        /// What each bucket is keyed by.
        per: PerKey,
        /// What happens to over-budget accesses.
        exceed: ExceedPolicy,
    },
    /// `-j QUOTA --limit N [--window T] [--per K] [--exceed P]`: a
    /// keyed windowed counter — at most N grants per T-tick window.
    Quota {
        /// Grants allowed per window.
        limit: u64,
        /// Window length in virtual-clock ticks.
        window: u64,
        /// What each counter is keyed by.
        per: PerKey,
        /// What happens to over-budget accesses.
        exceed: ExceedPolicy,
    },
}

impl Target {
    /// Returns `true` for targets that end rule processing with a verdict
    /// or a control transfer.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Target::Drop | Target::Accept | Target::Return | Target::Jump(_)
        )
    }

    /// The target's kind as a rule-language keyword (jump targets all
    /// render as `JUMP`; the chain name is carried elsewhere).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Target::Drop => "DROP",
            Target::Accept => "ACCEPT",
            Target::Continue => "CONTINUE",
            Target::Return => "RETURN",
            Target::Jump(_) => "JUMP",
            Target::StateSet { .. } | Target::StateUnset { .. } => "STATE",
            Target::Log { .. } => "LOG",
            Target::Trace => "TRACE",
            Target::RateLimit { .. } => "RATELIMIT",
            Target::Quota { .. } => "QUOTA",
        }
    }

    /// Whether this target consumes throttle state (RATELIMIT/QUOTA)
    /// and therefore owns a [`ThrottleCell`].
    pub fn is_throttle(&self) -> bool {
        matches!(self, Target::RateLimit { .. } | Target::Quota { .. })
    }
}

/// One complete firewall rule.
///
/// The hit counter is a relaxed atomic so rules can be shared read-only
/// across concurrently evaluating tasks (see `snapshot.rs`); `Clone`
/// carries the current count forward (a reload-edited rule base keeps
/// the tallies of the rules it retained), and equality ignores it — two
/// rules are the same rule regardless of how often they have fired.
#[derive(Debug)]
pub struct Rule {
    /// The default matches.
    pub def: DefaultMatches,
    /// Additional match modules, all of which must match.
    pub matches: Vec<MatchModule>,
    /// The action when everything matches.
    pub target: Target,
    /// Per-rule `--ctx-missing` override; `None` defers to the chain
    /// default, then to the engine default (fail-closed for DROP rules,
    /// fail-open otherwise).
    pub ctx_policy: Option<CtxPolicy>,
    /// The original rule text (for display, deletion, and logs).
    pub text: String,
    /// Times this rule's target fired (match + modules all passed).
    hits: AtomicU64,
    /// Cacheability analysis, match side: `true` when any match module
    /// consults context outside the verdict-cache key (STATE entries,
    /// signal state, syscall args, DAC owners, interpreter frames), so
    /// a walk that reaches this rule's modules is not key-determined.
    pub(crate) vc_impure_match: bool,
    /// Cacheability analysis, target side: `true` for targets with side
    /// effects (STATE writes, LOG, TRACE, throttle-state consumption)
    /// that a cached verdict would fail to replay.
    pub(crate) vc_impure_target: bool,
    /// Throttle state for RATELIMIT/QUOTA targets; `None` otherwise.
    /// Shared by `Clone` (an `Arc`, like the rule itself in snapshots)
    /// so in-flight buckets survive snapshot edits, and ignored by
    /// equality — like `hits`, state is not part of a rule's identity.
    pub(crate) throttle: Option<Arc<ThrottleCell>>,
}

impl Clone for Rule {
    fn clone(&self) -> Self {
        Rule {
            def: self.def.clone(),
            matches: self.matches.clone(),
            target: self.target.clone(),
            ctx_policy: self.ctx_policy,
            text: self.text.clone(),
            hits: AtomicU64::new(self.hits()),
            vc_impure_match: self.vc_impure_match,
            vc_impure_target: self.vc_impure_target,
            throttle: self.throttle.clone(),
        }
    }
}

impl PartialEq for Rule {
    fn eq(&self, other: &Self) -> bool {
        self.def == other.def
            && self.matches == other.matches
            && self.target == other.target
            && self.ctx_policy == other.ctx_policy
            && self.text == other.text
    }
}

impl Eq for Rule {}

impl Rule {
    /// Creates a rule with a zeroed hit counter and no `--ctx-missing`
    /// override.
    pub fn new(
        def: DefaultMatches,
        matches: Vec<MatchModule>,
        target: Target,
        text: String,
    ) -> Self {
        let vc_impure_match = matches.iter().any(module_is_vc_impure);
        let vc_impure_target = matches!(
            target,
            Target::StateSet { .. }
                | Target::StateUnset { .. }
                | Target::Log { .. }
                | Target::Trace
                | Target::RateLimit { .. }
                | Target::Quota { .. }
        );
        let throttle = if target.is_throttle() {
            Some(Arc::new(ThrottleCell::new()))
        } else {
            None
        };
        Rule {
            def,
            matches,
            target,
            ctx_policy: None,
            text,
            hits: AtomicU64::new(0),
            vc_impure_match,
            vc_impure_target,
            throttle,
        }
    }

    /// The throttle state cell backing a RATELIMIT/QUOTA target.
    pub(crate) fn throttle_cell(&self) -> Option<&Arc<ThrottleCell>> {
        self.throttle.as_ref()
    }

    /// Replaces this rule's throttle cell with `cell` — the hot-reload
    /// carryover hook (see `RuleBase::carry_throttle_state`).
    pub(crate) fn adopt_throttle(&mut self, cell: Arc<ThrottleCell>) {
        if self.throttle.is_some() {
            self.throttle = Some(cell);
        }
    }

    /// Whether this rule is *pure* for the verdict cache: a traversal
    /// through it is fully determined by the cache key's context fields
    /// and has no side effects a cached verdict would skip.
    pub fn vc_pure(&self) -> bool {
        !self.vc_impure_match && !self.vc_impure_target
    }

    /// Returns `true` if the rule can live in an entrypoint-specific
    /// chain.
    pub fn has_entrypoint(&self) -> bool {
        self.def.entrypoint().is_some()
    }

    /// Times this rule matched and its target ran.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub(crate) fn bump_hits(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}

/// Whether a value expression reads only context that is part of the
/// verdict-cache key (so two invocations with equal keys resolve it to
/// equal values).
fn value_is_key_determined(v: &ValueExpr) -> bool {
    match v {
        ValueExpr::Lit(_) => true,
        ValueExpr::Ctx(f) => matches!(
            f,
            CtxField::Entrypoint
                | CtxField::ResourceId
                | CtxField::ObjectSid
                | CtxField::AdvWrite
                | CtxField::AdvRead
                | CtxField::SubjectOrigin
        ),
    }
}

/// The static cacheability analysis for one match module: impure modules
/// consult per-process or per-call context the verdict-cache key does
/// not cover, so their outcome can change between equal-key invocations.
fn module_is_vc_impure(m: &MatchModule) -> bool {
    match m {
        // STATE entries, signal-handler state, syscall arguments, DAC
        // owners, and interpreter frames are all outside the key.
        MatchModule::State { .. }
        | MatchModule::SignalMatch
        | MatchModule::SyscallArgs { .. }
        | MatchModule::Owner { .. }
        | MatchModule::Interp { .. } => true,
        // COMPARE is pure only over key-covered context references.
        MatchModule::Compare { v1, v2, .. } => {
            !value_is_key_determined(v1) || !value_is_key_determined(v2)
        }
        // Adversary accessibility and the main-program binary are part
        // of the key.
        MatchModule::AdvAccess { .. } | MatchModule::Caller { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_types::InternId;

    #[test]
    fn entrypoint_requires_both_halves() {
        let mut d = DefaultMatches {
            program: Some(InternId(3)),
            ..Default::default()
        };
        assert_eq!(d.entrypoint(), None);
        d.entrypoint_pc = Some(0x596b);
        assert_eq!(d.entrypoint(), Some((InternId(3), 0x596b)));
    }

    #[test]
    fn cacheability_analysis_flags_impure_rules() {
        let rule = |m: Vec<MatchModule>, t: Target| {
            Rule::new(DefaultMatches::default(), m, t, String::new())
        };
        assert!(rule(
            vec![MatchModule::AdvAccess {
                write: true,
                want: true
            }],
            Target::Drop
        )
        .vc_pure());
        let state = rule(
            vec![MatchModule::State {
                key: 1,
                cmp: ValueExpr::Lit(1),
                negate: false,
            }],
            Target::Drop,
        );
        assert!(state.vc_impure_match && !state.vc_impure_target);
        assert!(state.clone().vc_impure_match, "clone keeps the flags");
        assert!(rule(vec![], Target::Log { tag: "t".into() }).vc_impure_target);
        assert!(rule(
            vec![MatchModule::Compare {
                v1: ValueExpr::Ctx(CtxField::ResourceId),
                v2: ValueExpr::Lit(3),
                negate: false,
            }],
            Target::Drop,
        )
        .vc_pure());
        assert!(
            rule(
                vec![MatchModule::Compare {
                    v1: ValueExpr::Ctx(CtxField::DacOwner),
                    v2: ValueExpr::Ctx(CtxField::TgtDacOwner),
                    negate: true,
                }],
                Target::Drop,
            )
            .vc_impure_match,
            "COMPARE over non-key context is impure"
        );
    }

    #[test]
    fn terminality() {
        assert!(Target::Drop.is_terminal());
        assert!(Target::Jump("x".into()).is_terminal());
        assert!(!Target::Trace.is_terminal());
        assert!(!Target::Log { tag: String::new() }.is_terminal());
        assert!(!Target::StateSet {
            key: 1,
            value: ValueExpr::Lit(1)
        }
        .is_terminal());
    }
}
