//! Rule-base listing, in the spirit of `iptables -L -v`.

use std::fmt::Write as _;

use crate::chain::ChainName;
use crate::engine::ProcessFirewall;

/// Renders the installed rule base: one section per chain, one line per
/// rule with its evaluated and hit counters, followed by the
/// entrypoint-chain summary.
///
/// The `evals` column comes from the metrics registry's per-rule
/// counters and stays zero unless detailed metrics are enabled
/// ([`crate::metrics::Metrics::set_detailed`]); the `hits` column is the
/// rule's own always-on counter.
///
/// # Examples
///
/// ```
/// use pf_core::{render_rules, OptLevel, ProcessFirewall};
/// use pf_types::Interner;
///
/// let mut mac = pf_mac::ubuntu_mini();
/// let mut programs = Interner::new();
/// let mut pf = ProcessFirewall::new(OptLevel::EptSpc);
/// pf.install("pftables -o FILE_OPEN -d tmp_t -j DROP", &mut mac, &mut programs)
///     .unwrap();
/// let listing = render_rules(&pf);
/// assert!(listing.contains("chain input"));
/// assert!(listing.contains("hits=0"));
/// ```
pub fn render_rules(pf: &ProcessFirewall) -> String {
    let mut out = String::new();
    for (chain, rules) in pf.base().iter() {
        let policy = match chain {
            ChainName::Input | ChainName::Output | ChainName::SyscallBegin => " (policy ACCEPT)",
            ChainName::User(_) => "",
        };
        let _ = writeln!(
            out,
            "chain {}{} — {} rules",
            chain.name(),
            policy,
            rules.len()
        );
        let snap = pf.metrics().chain_snapshot(chain);
        for (i, rule) in rules.iter().enumerate() {
            let evals = snap
                .as_ref()
                .and_then(|s| s.evaluated.get(i).copied())
                .unwrap_or(0);
            let _ = writeln!(
                out,
                "  [{i:>3}] evals={evals:<8} hits={:<8} {}",
                rule.hits(),
                rule.text
            );
        }
    }
    let _ = writeln!(
        out,
        "{} rules total; {} entrypoint-specific chains; {} generic input rules",
        pf.rule_count(),
        pf.base().entrypoint_chain_count(),
        pf.base().input_generic().len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptLevel;
    use pf_types::Interner;

    #[test]
    fn listing_includes_every_chain_and_rule() {
        let mut mac = pf_mac::ubuntu_mini();
        let mut programs = Interner::new();
        let pf = ProcessFirewall::new(OptLevel::Full);
        pf.install_all(
            [
                "pftables -o FILE_OPEN -d tmp_t -j DROP",
                "pftables -I signal_chain -m SIGNAL_MATCH -j DROP",
                "pftables -p /bin/x -i 0x10 -o FILE_READ -j DROP",
            ],
            &mut mac,
            &mut programs,
        )
        .unwrap();
        let listing = render_rules(&pf);
        assert!(listing.contains("chain input (policy ACCEPT)"));
        assert!(listing.contains("chain signal_chain"));
        assert!(listing.contains("3 rules total"));
        assert!(listing.contains("1 entrypoint-specific chains"));
    }
}
