//! Context fields, the collected-context bitmask, and the lazy packet.
//!
//! The firewall constructs its "packet" by fetching process and resource
//! information through context modules (Figure 3 of the paper). Collected
//! fields are recorded in a bitmask; with lazy retrieval enabled a field
//! is fetched only when a rule's match first touches it, and with context
//! caching enabled the (syscall-stable) entrypoint is preserved in the
//! task's per-syscall cache across multiple firewall invocations.

use pf_types::{ProgramId, SecId};

use crate::config::PfConfig;
use crate::env::{EvalEnv, Fetched};
use crate::metrics::Metrics;

/// One retrievable context field.
///
/// The `C_*` names are the spellings rules use to reference fields in
/// match/target options (e.g. `--value C_INO` in rule R5 of Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtxField {
    /// The entrypoint: innermost user frame (program, relative pc).
    Entrypoint,
    /// The resource identifier (`C_INO`): dev+ino folded to `u64`.
    ResourceId,
    /// The object's MAC label.
    ObjectSid,
    /// The object's DAC owner uid (`C_DAC_OWNER`).
    DacOwner,
    /// The symlink target's DAC owner uid (`C_TGT_DAC_OWNER`).
    TgtDacOwner,
    /// Whether the object is adversary-writable (low integrity).
    AdvWrite,
    /// Whether the object is adversary-readable (low secrecy).
    AdvRead,
    /// Syscall argument N (`C_ARG0`..`C_ARG3`); arg 0 is the syscall nr
    /// on the `syscallbegin` chain, matching rule R12.
    Arg(u8),
    /// The signal number being delivered (`C_SIGNAL`).
    SignalNum,
    /// The subject's monotone origin (taint) level (`C_ORIGIN`).
    SubjectOrigin,
}

impl CtxField {
    /// Every context field, for exhaustive iteration in metrics export.
    /// Indexed by [`CtxField::bit`].
    pub const ALL: [CtxField; 13] = [
        CtxField::Entrypoint,
        CtxField::ResourceId,
        CtxField::ObjectSid,
        CtxField::DacOwner,
        CtxField::TgtDacOwner,
        CtxField::AdvWrite,
        CtxField::AdvRead,
        CtxField::Arg(0),
        CtxField::Arg(1),
        CtxField::Arg(2),
        CtxField::Arg(3),
        CtxField::SignalNum,
        CtxField::SubjectOrigin,
    ];

    /// Bit index in the collected-context mask.
    pub fn bit(self) -> u32 {
        match self {
            CtxField::Entrypoint => 0,
            CtxField::ResourceId => 1,
            CtxField::ObjectSid => 2,
            CtxField::DacOwner => 3,
            CtxField::TgtDacOwner => 4,
            CtxField::AdvWrite => 5,
            CtxField::AdvRead => 6,
            CtxField::Arg(n) => 7 + n as u32,
            CtxField::SignalNum => 11,
            CtxField::SubjectOrigin => 12,
        }
    }

    /// The `C_*` spelling, for display.
    pub fn cname(self) -> &'static str {
        match self {
            CtxField::Entrypoint => "C_ENTRYPOINT",
            CtxField::ResourceId => "C_INO",
            CtxField::ObjectSid => "C_OBJECT",
            CtxField::DacOwner => "C_DAC_OWNER",
            CtxField::TgtDacOwner => "C_TGT_DAC_OWNER",
            CtxField::AdvWrite => "C_ADV_WRITE",
            CtxField::AdvRead => "C_ADV_READ",
            CtxField::Arg(0) => "C_ARG0",
            CtxField::Arg(1) => "C_ARG1",
            CtxField::Arg(2) => "C_ARG2",
            CtxField::Arg(_) => "C_ARG3",
            CtxField::SignalNum => "C_SIGNAL",
            CtxField::SubjectOrigin => "C_ORIGIN",
        }
    }

    /// Parses a `C_*` context-reference token.
    pub fn parse_cname(tok: &str) -> Option<CtxField> {
        Some(match tok {
            "C_ENTRYPOINT" => CtxField::Entrypoint,
            "C_INO" => CtxField::ResourceId,
            "C_OBJECT" => CtxField::ObjectSid,
            "C_DAC_OWNER" => CtxField::DacOwner,
            "C_TGT_DAC_OWNER" => CtxField::TgtDacOwner,
            "C_ADV_WRITE" => CtxField::AdvWrite,
            "C_ADV_READ" => CtxField::AdvRead,
            "C_ARG0" => CtxField::Arg(0),
            "C_ARG1" => CtxField::Arg(1),
            "C_ARG2" => CtxField::Arg(2),
            "C_ARG3" => CtxField::Arg(3),
            "C_SIGNAL" => CtxField::SignalNum,
            "C_ORIGIN" => CtxField::SubjectOrigin,
            _ => return None,
        })
    }
}

/// Cache slot ids for the per-syscall task cache (CONCACHE).
const CACHE_EPT_PROG: u8 = 0;
const CACHE_EPT_PC: u8 = 1;
const CACHE_EPT_MISSING: u8 = 2;

/// The operation "packet": lazily-materialized context for one firewall
/// invocation.
///
/// Fields memoize within the invocation regardless of configuration; the
/// configuration decides whether everything is fetched eagerly up front
/// (FULL) and whether the entrypoint survives across invocations in the
/// task cache (CONCACHE).
///
/// Every accessor reports the tri-state [`Fetched`]: `Missing` is
/// benign absence (no object on this operation), `Failed` means the
/// substrate attempted the fetch and errored. Failed fetches are
/// memoized for the invocation but never written to the CONCACHE
/// per-syscall cache — a later invocation in the same syscall retries
/// rather than pinning the degraded state.
pub struct Packet<'e> {
    env: &'e mut dyn EvalEnv,
    config: PfConfig,
    /// Bitmask of fields already collected this invocation.
    collected: u32,
    /// Set when a TRACE rule fires: the clock trace events are stamped
    /// against for the rest of the invocation.
    trace_started: Option<std::time::Instant>,
    entrypoint: Fetched<(ProgramId, u64)>,
    object_sid: Option<Fetched<SecId>>,
    resource_id: Option<Fetched<u64>>,
    dac_owner: Option<Fetched<u64>>,
    tgt_dac_owner: Option<Fetched<u64>>,
    adv_write: Option<Fetched<bool>>,
    adv_read: Option<Fetched<bool>>,
    signal_num: Option<Fetched<u64>>,
    subject_origin: Option<Fetched<u64>>,
}

/// Records one tri-state fetch in the metrics registry: the detailed
/// fetch/miss counters as before, plus the always-on per-field failure
/// counter when the fetch errored.
fn note<T>(metrics: &Metrics, field: CtxField, t0: Option<std::time::Instant>, v: &Fetched<T>) {
    metrics.observe_fetch(field, t0, v.is_missing());
    if v.is_failed() {
        metrics.field_failure(field);
    }
}

impl<'e> Packet<'e> {
    /// Wraps an evaluation environment for one invocation.
    pub fn new(env: &'e mut dyn EvalEnv, config: PfConfig) -> Self {
        Packet {
            env,
            config,
            collected: 0,
            trace_started: None,
            entrypoint: Fetched::Missing,
            object_sid: None,
            resource_id: None,
            dac_owner: None,
            tgt_dac_owner: None,
            adv_write: None,
            adv_read: None,
            signal_num: None,
            subject_origin: None,
        }
    }

    /// Access to the underlying environment (for targets and logging).
    pub fn env(&mut self) -> &mut dyn EvalEnv {
        self.env
    }

    /// Shared access to the underlying environment.
    pub fn env_ref(&self) -> &dyn EvalEnv {
        self.env
    }

    /// The bitmask of collected context fields.
    pub fn collected_mask(&self) -> u32 {
        self.collected
    }

    /// Arms tracing for the rest of this invocation (TRACE target).
    /// The first call wins; later TRACE rules keep the original clock.
    pub(crate) fn start_trace(&mut self) {
        if self.trace_started.is_none() {
            self.trace_started = Some(std::time::Instant::now());
        }
    }

    /// The trace clock, when a TRACE rule has fired this invocation.
    #[inline]
    pub(crate) fn trace_clock(&self) -> Option<std::time::Instant> {
        self.trace_started
    }

    fn mark(&mut self, field: CtxField) {
        self.collected |= 1 << field.bit();
    }

    /// The entrypoint *iff it was already collected this invocation* —
    /// a read-only peek for event emission that never forces an unwind
    /// (so recording a decision event cannot perturb the lazy-fetch
    /// behaviour it is observing).
    pub(crate) fn entrypoint_collected(&self) -> Option<(ProgramId, u64)> {
        if self.collected & (1 << CtxField::Entrypoint.bit()) == 0 {
            return None;
        }
        self.entrypoint.ok()
    }

    /// Eagerly materializes every context field (the unoptimized FULL
    /// behaviour: "a naive design simply fetches all process and resource
    /// contexts", Section 4.2).
    pub fn fetch_all(&mut self, metrics: &Metrics) {
        self.entrypoint_value(metrics);
        self.object_sid_value(metrics);
        self.resource_id_value(metrics);
        self.dac_owner_value(metrics);
        self.adv_write_value(metrics);
        self.adv_read_value(metrics);
        self.tgt_dac_owner_value(metrics);
        self.signal_value(metrics);
        self.subject_origin_value(metrics);
        for n in 0..4 {
            let _ = self.arg_value(n, metrics);
        }
    }

    /// The entrypoint, unwound from the user stack (and cached in the
    /// task's per-syscall cache under CONCACHE). `Missing` when the stack
    /// is benignly malformed — the §4.4 sanitization path, which only
    /// forfeits the process's own protection. `Failed` when the substrate
    /// reports the unwind itself errored; failed unwinds are never
    /// written to the cache.
    pub fn entrypoint_value(&mut self, metrics: &Metrics) -> Fetched<(ProgramId, u64)> {
        if self.collected & (1 << CtxField::Entrypoint.bit()) != 0 {
            return self.entrypoint;
        }
        self.mark(CtxField::Entrypoint);
        if self.config.context_caching {
            if self.env.cache_get(CACHE_EPT_MISSING).is_some() {
                metrics.bump_cache_hits();
                metrics.field_hit(CtxField::Entrypoint);
                self.entrypoint = Fetched::Missing;
                return self.entrypoint;
            }
            if let (Some(prog), Some(pc)) = (
                self.env.cache_get(CACHE_EPT_PROG),
                self.env.cache_get(CACHE_EPT_PC),
            ) {
                metrics.bump_cache_hits();
                metrics.field_hit(CtxField::Entrypoint);
                self.entrypoint = Fetched::Value((pf_types::InternId(prog as u32), pc));
                return self.entrypoint;
            }
        }
        metrics.bump_ctx_fetches();
        let t0 = metrics.timer();
        let ep = self.env.try_unwind_entrypoint();
        note(metrics, CtxField::Entrypoint, t0, &ep);
        self.entrypoint = ep;
        if self.config.context_caching {
            match ep {
                Fetched::Value((prog, pc)) => {
                    self.env.cache_put(CACHE_EPT_PROG, prog.0 as u64);
                    self.env.cache_put(CACHE_EPT_PC, pc);
                }
                Fetched::Missing => self.env.cache_put(CACHE_EPT_MISSING, 1),
                // A failed unwind is transient: leave the cache empty so
                // the next invocation in this syscall retries.
                Fetched::Failed(_) => {}
            }
        }
        ep
    }

    /// The object's MAC label, if the operation has an object.
    pub fn object_sid_value(&mut self, metrics: &Metrics) -> Fetched<SecId> {
        if self.object_sid.is_none() {
            self.mark(CtxField::ObjectSid);
            metrics.bump_ctx_fetches();
            let t0 = metrics.timer();
            let v = self.env.try_object().map(|o| o.sid);
            note(metrics, CtxField::ObjectSid, t0, &v);
            self.object_sid = Some(v);
        }
        self.object_sid.unwrap()
    }

    /// The resource identifier folded to `u64` (`C_INO`).
    pub fn resource_id_value(&mut self, metrics: &Metrics) -> Fetched<u64> {
        if self.resource_id.is_none() {
            self.mark(CtxField::ResourceId);
            metrics.bump_ctx_fetches();
            let t0 = metrics.timer();
            let v = self.env.try_object().map(|o| o.resource.as_u64());
            note(metrics, CtxField::ResourceId, t0, &v);
            self.resource_id = Some(v);
        }
        self.resource_id.unwrap()
    }

    /// The object's DAC owner uid (`C_DAC_OWNER`).
    pub fn dac_owner_value(&mut self, metrics: &Metrics) -> Fetched<u64> {
        if self.dac_owner.is_none() {
            self.mark(CtxField::DacOwner);
            metrics.bump_ctx_fetches();
            let t0 = metrics.timer();
            let v = self.env.try_object().map(|o| o.owner.0 as u64);
            note(metrics, CtxField::DacOwner, t0, &v);
            self.dac_owner = Some(v);
        }
        self.dac_owner.unwrap()
    }

    /// The symlink target's DAC owner uid (`C_TGT_DAC_OWNER`), available
    /// only on link-traversal operations.
    pub fn tgt_dac_owner_value(&mut self, metrics: &Metrics) -> Fetched<u64> {
        if self.tgt_dac_owner.is_none() {
            self.mark(CtxField::TgtDacOwner);
            metrics.bump_ctx_fetches();
            let t0 = metrics.timer();
            let v = self.env.try_link_target_owner().map(|u| u.0 as u64);
            note(metrics, CtxField::TgtDacOwner, t0, &v);
            self.tgt_dac_owner = Some(v);
        }
        self.tgt_dac_owner.unwrap()
    }

    /// Whether the object is adversary-writable (low integrity). A failed
    /// object fetch propagates: the adversary-access computation cannot
    /// run without the label.
    pub fn adv_write_value(&mut self, metrics: &Metrics) -> Fetched<bool> {
        if self.adv_write.is_none() {
            self.mark(CtxField::AdvWrite);
            metrics.bump_ctx_fetches();
            let sid = self.object_sid_value(metrics);
            let t0 = metrics.timer();
            let v = sid.map(|s| self.env.mac().adversary_writable(s));
            note(metrics, CtxField::AdvWrite, t0, &v);
            self.adv_write = Some(v);
        }
        self.adv_write.unwrap()
    }

    /// Whether the object is adversary-readable (low secrecy). A failed
    /// object fetch propagates, as for [`Packet::adv_write_value`].
    pub fn adv_read_value(&mut self, metrics: &Metrics) -> Fetched<bool> {
        if self.adv_read.is_none() {
            self.mark(CtxField::AdvRead);
            metrics.bump_ctx_fetches();
            let sid = self.object_sid_value(metrics);
            let t0 = metrics.timer();
            let v = sid.map(|s| self.env.mac().adversary_readable(s));
            note(metrics, CtxField::AdvRead, t0, &v);
            self.adv_read = Some(v);
        }
        self.adv_read.unwrap()
    }

    /// Signal number, on signal-delivery operations.
    pub fn signal_value(&mut self, metrics: &Metrics) -> Fetched<u64> {
        if self.signal_num.is_none() {
            self.mark(CtxField::SignalNum);
            metrics.bump_ctx_fetches();
            let t0 = metrics.timer();
            let v = self.env.try_signal().map(|s| s.signal.0 as u64);
            note(metrics, CtxField::SignalNum, t0, &v);
            self.signal_num = Some(v);
        }
        self.signal_num.unwrap()
    }

    /// The subject's monotone origin (taint) level (`C_ORIGIN`).
    /// `Missing` on substrates that do not track origin — an `--origin`
    /// selector then simply never matches; `Failed` when the taint
    /// label itself could not be read (fail-closed arbitration applies,
    /// like every other field).
    pub fn subject_origin_value(&mut self, metrics: &Metrics) -> Fetched<u64> {
        if self.subject_origin.is_none() {
            self.mark(CtxField::SubjectOrigin);
            metrics.bump_ctx_fetches();
            let t0 = metrics.timer();
            let v = self.env.try_subject_origin();
            note(metrics, CtxField::SubjectOrigin, t0, &v);
            self.subject_origin = Some(v);
        }
        self.subject_origin.unwrap()
    }

    /// Syscall argument `n` (arg 0 is the syscall number). Arguments are
    /// register reads, not context-module fetches, so only the per-field
    /// detail counter moves — never `ctx_fetches`.
    pub fn arg_value(&mut self, n: u8, metrics: &Metrics) -> u64 {
        let field = CtxField::Arg(n.min(3));
        if self.collected & (1 << field.bit()) == 0 {
            self.mark(field);
            metrics.field_fetch(field);
        }
        self.env.syscall_arg(n as usize)
    }

    /// Resolves a [`CtxField`] to its `u64` encoding; `Missing` when the
    /// field is unavailable for this operation, `Failed` when the fetch
    /// errored.
    pub fn field_value(&mut self, field: CtxField, metrics: &Metrics) -> Fetched<u64> {
        match field {
            CtxField::Entrypoint => self.entrypoint_value(metrics).map(|(p, pc)| {
                // Fold program and pc for comparisons; rules match the
                // pair structurally elsewhere.
                ((p.0 as u64) << 40) ^ pc
            }),
            CtxField::ResourceId => self.resource_id_value(metrics),
            CtxField::ObjectSid => self.object_sid_value(metrics).map(|s| s.0 as u64),
            CtxField::DacOwner => self.dac_owner_value(metrics),
            CtxField::TgtDacOwner => self.tgt_dac_owner_value(metrics),
            CtxField::AdvWrite => self.adv_write_value(metrics).map(u64::from),
            CtxField::AdvRead => self.adv_read_value(metrics).map(u64::from),
            CtxField::Arg(n) => Fetched::Value(self.arg_value(n, metrics)),
            CtxField::SignalNum => self.signal_value(metrics),
            CtxField::SubjectOrigin => self.subject_origin_value(metrics),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cname_round_trip() {
        for f in [
            CtxField::Entrypoint,
            CtxField::ResourceId,
            CtxField::ObjectSid,
            CtxField::DacOwner,
            CtxField::TgtDacOwner,
            CtxField::AdvWrite,
            CtxField::AdvRead,
            CtxField::Arg(0),
            CtxField::Arg(3),
            CtxField::SignalNum,
            CtxField::SubjectOrigin,
        ] {
            assert_eq!(CtxField::parse_cname(f.cname()), Some(f));
        }
        assert_eq!(CtxField::parse_cname("C_NOPE"), None);
    }

    #[test]
    fn all_is_indexed_by_bit() {
        for (i, f) in CtxField::ALL.iter().enumerate() {
            assert_eq!(f.bit() as usize, i, "{f:?}");
        }
    }

    #[test]
    fn bits_are_unique() {
        let fields = [
            CtxField::Entrypoint,
            CtxField::ResourceId,
            CtxField::ObjectSid,
            CtxField::DacOwner,
            CtxField::TgtDacOwner,
            CtxField::AdvWrite,
            CtxField::AdvRead,
            CtxField::Arg(0),
            CtxField::Arg(1),
            CtxField::Arg(2),
            CtxField::Arg(3),
            CtxField::SignalNum,
            CtxField::SubjectOrigin,
        ];
        let mut mask = 0u32;
        for f in fields {
            let bit = 1 << f.bit();
            assert_eq!(mask & bit, 0, "duplicate bit for {f:?}");
            mask |= bit;
        }
    }
}
