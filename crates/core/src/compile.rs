//! RULESETC: snapshot-time compilation of the input chain into indexed
//! dispatch tables.
//!
//! EPTSPC partitions the input chain along one dimension (the
//! entrypoint). This module generalizes the idea: every input rule is
//! indexed along **three** dimensions — LSM operation (`-o`), object
//! label (`-d`), and entrypoint (`-p`/`-i`) — so a lookup touches only
//! the rules whose selectors could possibly accept the invocation at
//! hand. Rules whose selector along a dimension is absent (or too broad
//! to index) land in that dimension's *wildcard* bucket; a lookup
//! merges the exact bucket and the wildcard bucket of every dimension.
//!
//! The soundness argument is the same as EPTSPC's (Section 4.3): a rule
//! excluded from a lookup is one whose indexed selector is *known not
//! to match* the fetched context value, so skipping it cannot change
//! the verdict — provided install order is preserved across the merged
//! buckets, which [`MergeDispatch`] guarantees by walking the (sorted,
//! pairwise-disjoint) index vectors as an ascending k-way merge. Fetch
//! *failures* never consult the index at all (the engine falls back to
//! a full or EPTSPC walk; see `engine.rs`), so `--ctx-missing` policies
//! keep their say exactly as before.

use std::collections::HashMap;

use pf_types::{LsmOperation, ProgramId, SecId};

use crate::rule::Rule;

/// Label sets with more members than this are not fanned out into
/// per-label buckets; the rule goes to the label-wildcard bucket
/// instead. Keeps pathological `-d a,b,c,...` rules from multiplying
/// the artifact size.
pub const MAX_LABEL_FANOUT: usize = 16;

/// One dispatch key: `None` along a dimension means "wildcard bucket".
type DispatchKey = (
    Option<LsmOperation>,
    Option<SecId>,
    Option<(ProgramId, u64)>,
);

/// The compiled artifact for one chain: rule indices bucketed by
/// (operation, object label, entrypoint). Built once per snapshot
/// compile; immutable and shared read-only afterwards.
#[derive(Debug, Clone, Default)]
pub struct CompiledDispatch {
    buckets: HashMap<DispatchKey, Vec<usize>>,
    /// `true` when at least one rule is bucketed under a concrete
    /// object label — the gate for eagerly fetching the label on
    /// lookup. When `false` the label dimension is pure wildcard and
    /// the fetch (with its failure modes) is skipped entirely.
    has_label_buckets: bool,
    /// Same gate for the entrypoint dimension (mirrors EPTSPC's
    /// `entrypoint_chain_count() == 0` fast path).
    has_ept_buckets: bool,
    /// Rules indexed (== the chain length at compile time).
    rules: usize,
}

impl CompiledDispatch {
    /// Compiles a chain's rules into the three-dimensional index.
    ///
    /// Placement per rule and dimension:
    /// * **operation** — `-o OP` present → the `Some(op)` half, else
    ///   wildcard. Infallible at lookup (the operation is the hook
    ///   argument, never fetched).
    /// * **label** — a *positive* `-d` set with 1..=[`MAX_LABEL_FANOUT`]
    ///   members fans out into one bucket per member (the rule can only
    ///   match an object carrying one of exactly those labels). Negated
    ///   sets, oversize sets, and the degenerate empty positive set all
    ///   go to the wildcard: exclusion must be provable, not probable.
    /// * **entrypoint** — `-p BIN -i PC` (both halves) → the exact
    ///   `(program, pc)` bucket, else wildcard. Identical to the
    ///   EPTSPC partition criterion.
    pub fn compile(rules: &[Rule]) -> Self {
        let mut this = CompiledDispatch {
            rules: rules.len(),
            ..Default::default()
        };
        for (i, rule) in rules.iter().enumerate() {
            let op_key = rule.def.op;
            let ept_key = rule.def.entrypoint();
            this.has_ept_buckets |= ept_key.is_some();
            match &rule.def.object {
                Some(set)
                    if !set.is_negated()
                        && !set.raw_members().is_empty()
                        && set.raw_members().len() <= MAX_LABEL_FANOUT =>
                {
                    // Fan-out: one bucket per member label. The member
                    // list is sorted and deduplicated (a LabelSet
                    // invariant), so each index lands in each member
                    // bucket exactly once.
                    this.has_label_buckets = true;
                    for &sid in set.raw_members() {
                        this.buckets
                            .entry((op_key, Some(sid), ept_key))
                            .or_default()
                            .push(i);
                    }
                }
                _ => {
                    this.buckets
                        .entry((op_key, None, ept_key))
                        .or_default()
                        .push(i);
                }
            }
        }
        this
    }

    /// Whether any rule is bucketed under a concrete object label.
    pub fn has_label_buckets(&self) -> bool {
        self.has_label_buckets
    }

    /// Whether any rule is bucketed under a concrete entrypoint.
    pub fn has_ept_buckets(&self) -> bool {
        self.has_ept_buckets
    }

    /// Number of rules indexed at compile time.
    pub fn rule_count(&self) -> usize {
        self.rules
    }

    /// Number of distinct (op, label, entrypoint) buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The largest single bucket — a capacity witness for the bench.
    pub fn max_bucket_len(&self) -> usize {
        self.buckets.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Fills `out` with the bucket slices applicable to an invocation
    /// whose fetched context is (`op`, `label`, `ept`) and returns how
    /// many were filled (0..=8).
    ///
    /// `label`/`ept` are `None` when the field was *benignly absent*
    /// (`Fetched::Missing`) or its dimension has no concrete buckets;
    /// then only that dimension's wildcard half is consulted — exactly
    /// the Missing → NoMatch semantics of the indexed selectors. The up
    /// to 2×2×2 combinations are pairwise disjoint by construction
    /// (each rule lives in exactly one op half, one ept half, and — for
    /// any single fetched label — at most one label bucket), so the
    /// merge below never sees a duplicate index.
    pub fn select<'s>(
        &'s self,
        op: LsmOperation,
        label: Option<SecId>,
        ept: Option<(ProgramId, u64)>,
        out: &mut [&'s [usize]; 8],
    ) -> usize {
        // An absent dimension makes its exact and wildcard halves
        // identical, so consult only the wildcard once.
        let label_halves = [label, None];
        let label_halves = &label_halves[..1 + usize::from(label.is_some())];
        let ept_halves = [ept, None];
        let ept_halves = &ept_halves[..1 + usize::from(ept.is_some())];
        let mut n = 0;
        for op_key in [Some(op), None] {
            for &label_key in label_halves {
                for &ept_key in ept_halves {
                    if let Some(bucket) = self.buckets.get(&(op_key, label_key, ept_key)) {
                        out[n] = bucket.as_slice();
                        n += 1;
                    }
                }
            }
        }
        n
    }
}

/// Ascending k-way merge over up to 8 sorted, pairwise-disjoint index
/// slices — the order-preserving walk over the selected buckets. Zero
/// allocations: state is the slice array plus one cursor each.
pub struct MergeDispatch<'s> {
    slices: [&'s [usize]; 8],
    cursors: [usize; 8],
    n: usize,
}

impl<'s> MergeDispatch<'s> {
    /// Builds a merge over `slices` (at most 8).
    pub fn new(slices: &[&'s [usize]]) -> Self {
        let mut this = MergeDispatch {
            slices: [&[]; 8],
            cursors: [0; 8],
            n: slices.len().min(8),
        };
        this.slices[..this.n].copy_from_slice(&slices[..this.n]);
        this
    }
}

impl Iterator for MergeDispatch<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (slice idx, value)
        for k in 0..self.n {
            if let Some(&v) = self.slices[k].get(self.cursors[k]) {
                if best.is_none_or(|(_, bv)| v < bv) {
                    best = Some((k, v));
                }
            }
        }
        let (k, v) = best?;
        self.cursors[k] += 1;
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{DefaultMatches, Rule, Target};
    use pf_types::{InternId, LabelSet};

    fn rule(op: Option<LsmOperation>, object: Option<LabelSet>, ept: Option<(u32, u64)>) -> Rule {
        Rule::new(
            DefaultMatches {
                op,
                object,
                program: ept.map(|(p, _)| InternId(p)),
                entrypoint_pc: ept.map(|(_, pc)| pc),
                ..Default::default()
            },
            vec![],
            Target::Drop,
            String::new(),
        )
    }

    fn labels(members: &[u32]) -> LabelSet {
        LabelSet::of(members.iter().map(|&m| InternId(m)))
    }

    fn lookup(
        d: &CompiledDispatch,
        op: LsmOperation,
        label: Option<u32>,
        ept: Option<(u32, u64)>,
    ) -> Vec<usize> {
        let mut slices: [&[usize]; 8] = [&[]; 8];
        let n = d.select(
            op,
            label.map(InternId),
            ept.map(|(p, pc)| (InternId(p), pc)),
            &mut slices,
        );
        MergeDispatch::new(&slices[..n]).collect()
    }

    #[test]
    fn empty_chain_compiles_to_nothing() {
        let d = CompiledDispatch::compile(&[]);
        assert_eq!(d.rule_count(), 0);
        assert_eq!(d.bucket_count(), 0);
        assert!(!d.has_label_buckets() && !d.has_ept_buckets());
        assert!(lookup(&d, LsmOperation::FileOpen, None, None).is_empty());
    }

    #[test]
    fn merge_preserves_install_order_across_buckets() {
        let rules = vec![
            rule(Some(LsmOperation::FileOpen), None, None), // 0: op bucket
            rule(None, Some(labels(&[7])), None),           // 1: label bucket
            rule(None, None, Some((3, 0x10))),              // 2: ept bucket
            rule(None, None, None),                         // 3: triple wildcard
            rule(
                Some(LsmOperation::FileOpen),
                Some(labels(&[7])),
                Some((3, 0x10)),
            ), // 4: exact
        ];
        let d = CompiledDispatch::compile(&rules);
        assert!(d.has_label_buckets() && d.has_ept_buckets());
        // Everything applicable, merged back into install order.
        assert_eq!(
            lookup(&d, LsmOperation::FileOpen, Some(7), Some((3, 0x10))),
            vec![0, 1, 2, 3, 4]
        );
        // A different label/entrypoint excludes the bound rules.
        assert_eq!(
            lookup(&d, LsmOperation::FileOpen, Some(9), Some((9, 0x90))),
            vec![0, 3]
        );
        // A different op excludes the op-bound rules (1 needs label 7).
        assert_eq!(
            lookup(&d, LsmOperation::FileUnlink, Some(7), None),
            vec![1, 3]
        );
    }

    #[test]
    fn missing_dimensions_walk_wildcard_buckets_only() {
        let rules = vec![
            rule(None, Some(labels(&[7])), None),
            rule(None, None, Some((3, 0x10))),
            rule(None, None, None),
        ];
        let d = CompiledDispatch::compile(&rules);
        // Benign absence along both fetched dimensions: only the
        // wildcard rule can match, and only it is walked.
        assert_eq!(lookup(&d, LsmOperation::FileOpen, None, None), vec![2]);
    }

    #[test]
    fn multi_label_sets_fan_out_to_each_member() {
        let rules = vec![rule(None, Some(labels(&[3, 5])), None)];
        let d = CompiledDispatch::compile(&rules);
        assert_eq!(d.bucket_count(), 2);
        assert_eq!(lookup(&d, LsmOperation::FileOpen, Some(3), None), vec![0]);
        assert_eq!(lookup(&d, LsmOperation::FileOpen, Some(5), None), vec![0]);
        assert!(lookup(&d, LsmOperation::FileOpen, Some(4), None).is_empty());
    }

    #[test]
    fn negated_and_oversize_sets_stay_wildcard() {
        let negated = labels(&[7]).negated();
        let oversize = labels(&(0..=MAX_LABEL_FANOUT as u32).collect::<Vec<_>>());
        let empty = labels(&[]);
        let rules = vec![
            rule(None, Some(negated), None),
            rule(None, Some(oversize), None),
            rule(None, Some(empty), None),
        ];
        let d = CompiledDispatch::compile(&rules);
        assert!(!d.has_label_buckets(), "no provable exclusion → no fan-out");
        // Every lookup walks all three: none can be excluded by label.
        assert_eq!(
            lookup(&d, LsmOperation::FileOpen, Some(7), None),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn merge_handles_adjacent_and_interleaved_runs() {
        let a = [0usize, 2, 4];
        let b = [1usize, 3, 5];
        let c = [6usize, 7];
        let merged: Vec<_> = MergeDispatch::new(&[&a, &b, &c]).collect();
        assert_eq!(merged, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let single: Vec<_> = MergeDispatch::new(&[&c]).collect();
        assert_eq!(single, vec![6, 7]);
        assert_eq!(MergeDispatch::new(&[]).count(), 0);
    }
}
