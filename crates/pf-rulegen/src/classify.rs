//! Entrypoint classification and the Table 8 threshold sweep.

use std::collections::HashMap;

use crate::trace::TraceEvent;

/// The integrity classification of an entrypoint over (a prefix of) a
/// trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntrypointClass {
    /// Accessed only adversary-inaccessible (high-integrity) resources.
    HighOnly,
    /// Accessed only adversary-accessible (low-integrity) resources.
    LowOnly,
    /// Accessed both — no safe invariant rule can be generated.
    Both,
}

/// Per-entrypoint accumulation over a trace.
#[derive(Debug, Clone)]
pub struct EntrypointStats {
    /// Entrypoint identity.
    pub ept: (String, u64),
    /// Total invocations observed.
    pub invocations: u64,
    /// 1-based invocation index at which the classification first became
    /// `Both`, if it ever did.
    pub flip_at: Option<u64>,
    /// Class of the first invocation (`true` = low).
    pub starts_low: bool,
    /// The representative operation (most entrypoints have one).
    pub op: String,
}

impl EntrypointStats {
    /// Classification using only the first `max(threshold, 1)` events —
    /// what a distributor generating rules after `threshold` invocations
    /// would conclude.
    pub fn class_at(&self, threshold: u64) -> EntrypointClass {
        let horizon = threshold.max(1).min(self.invocations);
        match self.flip_at {
            Some(flip) if flip <= horizon => EntrypointClass::Both,
            _ if self.starts_low => EntrypointClass::LowOnly,
            _ => EntrypointClass::HighOnly,
        }
    }

    /// Classification over the whole trace (ground truth).
    pub fn final_class(&self) -> EntrypointClass {
        self.class_at(self.invocations)
    }
}

/// Folds a trace into per-entrypoint statistics.
pub fn accumulate(trace: &[TraceEvent]) -> Vec<EntrypointStats> {
    let mut map: HashMap<&(String, u64), EntrypointStats> = HashMap::new();
    for ev in trace {
        let entry = map.entry(&ev.ept).or_insert_with(|| EntrypointStats {
            ept: ev.ept.clone(),
            invocations: 0,
            flip_at: None,
            starts_low: ev.low_integrity,
            op: ev.op.clone(),
        });
        entry.invocations += 1;
        if entry.flip_at.is_none() && ev.low_integrity != entry.starts_low {
            entry.flip_at = Some(entry.invocations);
        }
    }
    let mut stats: Vec<EntrypointStats> = map.into_values().collect();
    stats.sort_by(|a, b| a.ept.cmp(&b.ept));
    stats
}

/// One row of Table 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table8Row {
    /// Invocation threshold for rule generation.
    pub threshold: u64,
    /// Entrypoints classified high-only at the threshold horizon.
    pub high_only: u64,
    /// Entrypoints classified low-only.
    pub low_only: u64,
    /// Entrypoints already seen accessing both.
    pub both: u64,
    /// Rules produced: entrypoints with ≥ threshold invocations whose
    /// horizon classification is high- or low-only.
    pub rules_produced: u64,
    /// Of those rules, how many the rest of the trace contradicts.
    pub false_positives: u64,
}

/// Runs the Table 8 sweep over per-entrypoint statistics.
pub fn sweep_thresholds(stats: &[EntrypointStats], thresholds: &[u64]) -> Vec<Table8Row> {
    thresholds
        .iter()
        .map(|&threshold| {
            let horizon = threshold.max(1);
            let mut row = Table8Row {
                threshold,
                high_only: 0,
                low_only: 0,
                both: 0,
                rules_produced: 0,
                false_positives: 0,
            };
            for s in stats {
                match s.class_at(horizon) {
                    EntrypointClass::HighOnly => row.high_only += 1,
                    EntrypointClass::LowOnly => row.low_only += 1,
                    EntrypointClass::Both => row.both += 1,
                }
                if s.invocations >= horizon {
                    let at = s.class_at(horizon);
                    if at != EntrypointClass::Both {
                        row.rules_produced += 1;
                        if s.final_class() == EntrypointClass::Both {
                            row.false_positives += 1;
                        }
                    }
                }
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{synthetic_trace, PAPER_THRESHOLDS};

    fn ev(ept: u64, low: bool, ts: u64) -> TraceEvent {
        TraceEvent {
            ept: ("/bin/p".into(), ept),
            op: "FILE_OPEN".into(),
            object: if low { "tmp_t" } else { "etc_t" }.into(),
            low_integrity: low,
            ts,
        }
    }

    #[test]
    fn accumulate_tracks_flip_points() {
        let trace = vec![
            ev(1, false, 1),
            ev(1, false, 2),
            ev(1, true, 3),
            ev(1, false, 4),
        ];
        let stats = accumulate(&trace);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].invocations, 4);
        assert_eq!(stats[0].flip_at, Some(3));
        assert!(!stats[0].starts_low);
        assert_eq!(stats[0].class_at(2), EntrypointClass::HighOnly);
        assert_eq!(stats[0].class_at(3), EntrypointClass::Both);
        assert_eq!(stats[0].final_class(), EntrypointClass::Both);
    }

    #[test]
    fn threshold_zero_classifies_by_first_event() {
        let trace = vec![ev(1, true, 1), ev(1, false, 2)];
        let stats = accumulate(&trace);
        assert_eq!(stats[0].class_at(0), EntrypointClass::LowOnly);
    }

    #[test]
    fn sweep_counts_rules_and_false_positives() {
        // Two entrypoints: a pure-high with 10 invocations, a flipper at 3.
        let mut trace: Vec<TraceEvent> = (0..10).map(|i| ev(1, false, i)).collect();
        trace.extend([ev(2, false, 100), ev(2, false, 101), ev(2, true, 102)]);
        let stats = accumulate(&trace);
        let rows = sweep_thresholds(&stats, &[0, 2, 3, 5]);
        // T=0: both classified by first event (high); 2 rules; 1 FP.
        assert_eq!(rows[0].rules_produced, 2);
        assert_eq!(rows[0].false_positives, 1);
        assert_eq!(rows[0].both, 0);
        // T=2: flipper not yet flipped; still 2 rules, 1 FP.
        assert_eq!(rows[1].false_positives, 1);
        // T=3: flipper now Both; 1 rule, 0 FPs.
        assert_eq!(rows[2].both, 1);
        assert_eq!(rows[2].rules_produced, 1);
        assert_eq!(rows[2].false_positives, 0);
        // T=5: flipper has only 3 invocations, drops out of rule pool.
        assert_eq!(rows[3].rules_produced, 1);
    }

    #[test]
    fn synthetic_trace_reproduces_table8_exactly() {
        let stats = accumulate(&synthetic_trace());
        let rows = sweep_thresholds(&stats, &PAPER_THRESHOLDS);
        let expected: [(u64, u64, u64, u64, u64, u64); 9] = [
            (0, 4570, 664, 0, 5234, 525),
            (5, 4436, 508, 290, 2329, 235),
            (10, 4384, 482, 368, 1536, 157),
            (50, 4257, 480, 497, 490, 28),
            (100, 4247, 480, 507, 295, 18),
            (500, 4233, 480, 521, 64, 4),
            (1000, 4230, 480, 524, 34, 1),
            (1149, 4229, 480, 525, 30, 0),
            (5000, 4229, 480, 525, 11, 0),
        ];
        for (row, want) in rows.iter().zip(expected) {
            assert_eq!(
                (
                    row.threshold,
                    row.high_only,
                    row.low_only,
                    row.both,
                    row.rules_produced,
                    row.false_positives,
                ),
                want,
                "threshold {}",
                want.0
            );
        }
    }

    #[test]
    fn no_false_positives_at_or_above_1149() {
        let stats = accumulate(&synthetic_trace());
        let rows = sweep_thresholds(&stats, &[1149, 2000, 10_000]);
        assert!(rows.iter().all(|r| r.false_positives == 0));
    }
}
