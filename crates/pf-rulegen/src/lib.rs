#![warn(missing_docs)]

//! Rule generation for the Process Firewall (Section 6.3 of the paper).
//!
//! OS distributors generate rules rather than users writing them:
//!
//! * [`trace`] — the runtime-trace event model (fed by the LOG target's
//!   JSON records) and a seeded synthetic generator reproducing the
//!   paper's two-week desktop trace: 5234 entrypoints, hundreds of
//!   thousands of entries, with the exact classification dynamics of
//!   Table 8 (including the entrypoint that switches class at its
//!   1149th invocation);
//! * [`classify`] — per-entrypoint high/low/both classification against
//!   adversary accessibility, and the invocation-threshold sweep that
//!   regenerates Table 8;
//! * [`templates`] — the T1/T2 rule templates of Table 5;
//! * [`suggest`] — rule suggestion from runtime traces and rule
//!   generation from known-vulnerability records;
//! * [`deployment`] — the §6.3.2 deployment-consistency analysis (which
//!   programs always launch in the environment the distributor tested);
//! * [`synth`] — seeded synthetic multi-tenant rule bases (10k–100k
//!   rules) for the RULESETC dispatch benchmark and the cross-level
//!   differential fuzz harness.

pub mod classify;
pub mod coverage;
pub mod deployment;
pub mod suggest;
pub mod synth;
pub mod templates;
pub mod trace;

pub use classify::{sweep_thresholds, EntrypointClass, EntrypointStats, Table8Row};
pub use coverage::{replay_attacks, CoverageReport, Protection, RuleCoverage};
pub use suggest::{rules_from_trace, rules_from_vulnerability, VulnRecord};
pub use synth::{synth_probes, synth_ruleset, SynthConfig, SynthProbe, Xorshift64};
pub use templates::{instantiate_t1, instantiate_t2, T1, T2};
pub use trace::{synthetic_trace, trace_from_logs, TraceEvent, PAPER_THRESHOLDS};
