//! Coverage analysis: false negatives of a generated rule set.
//!
//! Section 6.3.1 of the paper observes that rules generated from program
//! *test suites* cause no false positives but "create unnecessary false
//! negatives": a test suite exercises program environments (configs,
//! arguments) the deployment never uses, so entrypoints look both-class
//! and get no rule, or get a wider rule than the deployment needs. This
//! module quantifies that: given the entrypoint set a rule base covers
//! and a stream of *attack* events, which attacks slip through?

use std::collections::HashSet;

use crate::classify::{EntrypointClass, EntrypointStats};
use crate::trace::TraceEvent;

/// The protection profile a rule set provides for one entrypoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// Low-integrity resources are blocked (high-only entrypoint rule).
    BlocksLowIntegrity,
    /// High-integrity resources are blocked (low-only entrypoint rule).
    BlocksHighIntegrity,
    /// No rule (unknown or both-class entrypoint).
    None,
}

/// A rule set summarized as per-entrypoint protections.
#[derive(Debug, Default)]
pub struct RuleCoverage {
    protections: Vec<((String, u64), Protection)>,
}

impl RuleCoverage {
    /// Derives coverage from classified trace statistics at a threshold,
    /// mirroring [`crate::suggest::rules_from_trace`].
    pub fn from_stats(stats: &[EntrypointStats], threshold: u64) -> Self {
        let horizon = threshold.max(1);
        let mut protections = Vec::new();
        for s in stats {
            if s.invocations < horizon {
                continue;
            }
            let prot = match s.class_at(horizon) {
                EntrypointClass::HighOnly => Protection::BlocksLowIntegrity,
                EntrypointClass::LowOnly => Protection::BlocksHighIntegrity,
                EntrypointClass::Both => continue,
            };
            protections.push((s.ept.clone(), prot));
        }
        RuleCoverage { protections }
    }

    /// The protection for one entrypoint.
    pub fn protection(&self, ept: &(String, u64)) -> Protection {
        self.protections
            .iter()
            .find(|(e, _)| e == ept)
            .map(|(_, p)| *p)
            .unwrap_or(Protection::None)
    }

    /// Number of protected entrypoints.
    pub fn len(&self) -> usize {
        self.protections.len()
    }

    /// Returns `true` when nothing is protected.
    pub fn is_empty(&self) -> bool {
        self.protections.is_empty()
    }
}

/// The result of replaying attacks against a coverage profile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageReport {
    /// Attacks whose unsafe access a rule would have dropped.
    pub blocked: u64,
    /// Attacks through entrypoints with no rule (false negatives).
    pub missed_unprotected: u64,
    /// Attacks through entrypoints whose rule points the wrong way
    /// (also false negatives).
    pub missed_wrong_direction: u64,
    /// The distinct unprotected entrypoints attacks flowed through.
    pub unprotected_entrypoints: usize,
}

impl CoverageReport {
    /// Total false negatives.
    pub fn false_negatives(&self) -> u64 {
        self.missed_unprotected + self.missed_wrong_direction
    }
}

/// Replays a stream of *attack* events (accesses to unsafe resources)
/// against the coverage and reports what gets blocked vs. missed.
///
/// An attack event is a [`TraceEvent`] whose `low_integrity` flag
/// records the unsafe resource's class: `true` for planted/low-integrity
/// resources (search-path/squat/library/inclusion attacks), `false` for
/// protected/high-integrity ones (traversal, link following).
pub fn replay_attacks(coverage: &RuleCoverage, attacks: &[TraceEvent]) -> CoverageReport {
    let mut report = CoverageReport::default();
    let mut unprotected: HashSet<&(String, u64)> = HashSet::new();
    for ev in attacks {
        match (coverage.protection(&ev.ept), ev.low_integrity) {
            (Protection::BlocksLowIntegrity, true) | (Protection::BlocksHighIntegrity, false) => {
                report.blocked += 1
            }
            (Protection::None, _) => {
                report.missed_unprotected += 1;
                unprotected.insert(&ev.ept);
            }
            _ => report.missed_wrong_direction += 1,
        }
    }
    report.unprotected_entrypoints = unprotected.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::accumulate;

    fn ev(ept: u64, low: bool, ts: u64) -> TraceEvent {
        TraceEvent {
            ept: ("/bin/p".into(), ept),
            op: "FILE_OPEN".into(),
            object: String::new(),
            low_integrity: low,
            ts,
        }
    }

    /// A "test suite" trace exercising entrypoint 1 (high-only) and
    /// entrypoint 2 in *both* classes (extra configurations), plus a
    /// "deployment" where entrypoint 2 is actually high-only.
    fn test_suite_stats() -> Vec<EntrypointStats> {
        let mut t = Vec::new();
        for i in 0..10 {
            t.push(ev(1, false, i));
            t.push(ev(2, i % 2 == 1, 100 + i)); // Both under test configs.
        }
        accumulate(&t)
    }

    #[test]
    fn coverage_reflects_classification() {
        let cov = RuleCoverage::from_stats(&test_suite_stats(), 5);
        assert_eq!(cov.len(), 1);
        assert_eq!(
            cov.protection(&("/bin/p".into(), 1)),
            Protection::BlocksLowIntegrity
        );
        assert_eq!(cov.protection(&("/bin/p".into(), 2)), Protection::None);
    }

    #[test]
    fn test_suite_rules_create_false_negatives() {
        // The deployment-only trace would have protected entrypoint 2,
        // but the test suite's extra environments made it both-class —
        // so attacks through it are missed.
        let cov = RuleCoverage::from_stats(&test_suite_stats(), 5);
        let attacks = vec![ev(1, true, 1000), ev(2, true, 1001), ev(2, true, 1002)];
        let report = replay_attacks(&cov, &attacks);
        assert_eq!(report.blocked, 1, "entrypoint 1's rule fires");
        assert_eq!(report.missed_unprotected, 2, "entrypoint 2 unprotected");
        assert_eq!(report.unprotected_entrypoints, 1);
        assert_eq!(report.false_negatives(), 2);
    }

    #[test]
    fn deployment_rules_close_the_gap() {
        // Rules from the *deployment's own* trace (entrypoint 2 is
        // high-only there) block everything.
        let mut deploy = Vec::new();
        for i in 0..10 {
            deploy.push(ev(1, false, i));
            deploy.push(ev(2, false, 100 + i));
        }
        let cov = RuleCoverage::from_stats(&accumulate(&deploy), 5);
        let attacks = vec![ev(1, true, 1000), ev(2, true, 1001)];
        let report = replay_attacks(&cov, &attacks);
        assert_eq!(report.blocked, 2);
        assert_eq!(report.false_negatives(), 0);
    }

    #[test]
    fn wrong_direction_rules_are_counted() {
        // A low-only entrypoint rule blocks high-integrity accesses;
        // low-integrity attacks through it are misses, not blocks.
        let mut t = Vec::new();
        for i in 0..10 {
            t.push(ev(3, true, i)); // Low-only entrypoint.
        }
        let cov = RuleCoverage::from_stats(&accumulate(&t), 5);
        let report = replay_attacks(&cov, &[ev(3, true, 100)]);
        assert_eq!(report.missed_wrong_direction, 1);
        let report2 = replay_attacks(&cov, &[ev(3, false, 101)]);
        assert_eq!(report2.blocked, 1);
    }
}
