//! Seeded synthetic multi-tenant rule bases.
//!
//! The RULESETC dispatch rung only pays off when a large rule base is
//! *partitioned* — many tenants, each with rules bound to its own
//! object labels, programs, and entrypoints, so any one access can
//! match only a small slice of the installed order. This module
//! generates such rule bases deterministically from a seed, spanning
//! every selector family (`-s`, `-d`, `-p`/`-i`, `-o`, `-r`,
//! `--ctx-missing`, `-m`) and every target family (ACCEPT, DROP, LOG,
//! TRACE, RATELIMIT, QUOTA, user-chain jumps), for use by the
//! `table6_rulesetc` benchmark and the cross-level differential fuzz
//! harness.
//!
//! Determinism is a hard requirement: the differential harness replays
//! the same seed at four optimization levels and asserts verdict
//! parity, so the generator never consults ambient entropy.

/// Minimal xorshift64 PRNG — deterministic, dependency-free, good
/// enough for rule-shape selection (not for cryptography).
#[derive(Debug, Clone)]
pub struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    /// Seeds the generator; a zero seed is remapped to a fixed
    /// non-zero constant (xorshift has a zero fixed point).
    pub fn new(seed: u64) -> Self {
        let mixed = seed ^ 0x9E37_79B9_7F4A_7C15;
        Xorshift64 {
            state: if mixed == 0 {
                0x2545_F491_4F6C_DD1D
            } else {
                mixed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform-ish value in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// `true` with roughly `pct` percent probability.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

/// Shape of a synthetic rule base.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// PRNG seed; equal seeds produce byte-identical output.
    pub seed: u64,
    /// Number of rules appended to the Input chain (user-chain bodies
    /// and `-N` declarations come on top of this).
    pub rules: usize,
    /// Number of tenants the rules are partitioned across.
    pub tenants: usize,
    /// Number of user chains reachable via jump targets.
    pub user_chains: usize,
}

impl SynthConfig {
    /// A config with the default partitioning (64 tenants, 8 user
    /// chains) at the given size.
    pub fn new(seed: u64, rules: usize) -> Self {
        SynthConfig {
            seed,
            rules,
            tenants: 64,
            user_chains: 8,
        }
    }
}

/// Operations the generator binds rules and probes to.
pub const SYNTH_OPS: [&str; 10] = [
    "FILE_OPEN",
    "FILE_READ",
    "FILE_WRITE",
    "FILE_EXEC",
    "FILE_CREATE",
    "FILE_UNLINK",
    "DIR_SEARCH",
    "SOCKET_BIND",
    "SOCKET_CONNECT",
    "PROCESS_FORK",
];

/// Object label carried by tenant `t`'s resources.
pub fn tenant_label(t: usize) -> String {
    format!("tenant{t}_t")
}

/// Subject label of tenant `t`'s service processes.
pub fn tenant_subject(t: usize) -> String {
    format!("tenant{t}_app_t")
}

/// Program path of tenant `t`'s worker binary.
pub fn tenant_program(t: usize) -> String {
    format!("/srv/tenant{t}/bin/worker")
}

/// Every 125th Input rule is forced into one of these shapes so each
/// 1000-rule block provably contains all selector and target families
/// (8 forced slots x 8 repeats per block). Slots 0-5 force selector
/// families; slots 6-7 force the throttle and jump target families.
const FORCED_SLOTS: usize = 8;

/// Generates the `pftables` command lines of a synthetic multi-tenant
/// rule base: first the `-N` user-chain declarations, then the user
/// chain bodies, then `cfg.rules` Input-chain rules.
///
/// The output is deterministic in `cfg` and every line parses under
/// the stock MAC policy (tenant labels are interned on first use).
pub fn synth_ruleset(cfg: &SynthConfig) -> Vec<String> {
    let mut rng = Xorshift64::new(cfg.seed);
    let tenants = cfg.tenants.max(1);
    let chains = cfg.user_chains;
    let mut out = Vec::with_capacity(cfg.rules + chains * 4 + chains);

    for c in 0..chains {
        out.push(format!("pftables -N tenant_svc{c}"));
    }
    for c in 0..chains {
        let t = rng.below(tenants as u64) as usize;
        let body = 2 + rng.below(3);
        for _ in 0..body {
            let op = SYNTH_OPS[rng.below(SYNTH_OPS.len() as u64) as usize];
            // Deeper chains may jump onward, bounding out at the last
            // chain — exercises the engine's jump-depth accounting.
            let target = if c + 1 < chains && rng.chance(25) {
                format!("tenant_svc{}", c + 1)
            } else if rng.chance(30) {
                "RETURN".to_owned()
            } else if rng.chance(50) {
                "ACCEPT".to_owned()
            } else {
                "DROP".to_owned()
            };
            out.push(format!(
                "pftables -A tenant_svc{c} -o {op} -d {} -j {target}",
                tenant_label(t)
            ));
        }
    }

    for i in 0..cfg.rules {
        out.push(input_rule(&mut rng, i, tenants, chains));
    }
    out
}

/// Builds one Input-chain rule. `slot = i % 125` forces family
/// coverage; everything else is PRNG-driven.
fn input_rule(rng: &mut Xorshift64, i: usize, tenants: usize, chains: usize) -> String {
    let slot = i % 125;
    let t = rng.below(tenants as u64) as usize;
    let op = SYNTH_OPS[rng.below(SYNTH_OPS.len() as u64) as usize];
    let mut line = String::from("pftables -A INPUT");

    // Subject selector: forced on slot 0, else occasional.
    if slot == 0 || rng.chance(8) {
        line.push_str(&format!(" -s {}", tenant_subject(t)));
    }

    // Object selector: the partitioning workhorse. Mostly a single
    // tenant label; sometimes a small multi-member set (fan-out path)
    // or a negated set (wildcard-bucket path).
    let with_object = slot == 1 || !rng.chance(15);
    if with_object {
        if rng.chance(6) {
            let u = rng.below(tenants as u64) as usize;
            line.push_str(&format!(" -d {{{}|{}}}", tenant_label(t), tenant_label(u)));
        } else if rng.chance(5) {
            line.push_str(&format!(" -d ~{}", tenant_label(t)));
        } else {
            line.push_str(&format!(" -d {}", tenant_label(t)));
        }
    }

    // Program + entrypoint selector: forced on slot 2.
    if slot == 2 || rng.chance(12) {
        let pc = 0x1000 + rng.below(64) * 0x10;
        line.push_str(&format!(" -p {} -i 0x{pc:x}", tenant_program(t)));
    }

    line.push_str(&format!(" -o {op}"));

    // Resource selector: forced on slot 3.
    if slot == 3 || rng.chance(7) {
        line.push_str(&format!(" -r 0x{:x}", 0x4000 + rng.below(256)));
    }

    // Context-missing override: forced on slot 4.
    if slot == 4 || rng.chance(6) {
        let pol = ["skip", "match", "drop"][rng.below(3) as usize];
        line.push_str(&format!(" --ctx-missing {pol}"));
    }

    // Match module: forced on slot 5.
    if slot == 5 || rng.chance(4) {
        if rng.chance(50) {
            line.push_str(&format!(" -m OWNER --uid {}", 1000 + t));
        } else {
            line.push_str(" -m ADV_ACCESS --write --accessible");
        }
    }

    let target = match slot {
        6 => {
            if rng.chance(50) {
                format!(
                    "RATELIMIT --rate {} --burst {} --per {} --exceed {}",
                    1 + rng.below(50),
                    1 + rng.below(20),
                    ["subject", "adversary", "resource"][rng.below(3) as usize],
                    ["drop", "log", "degrade"][rng.below(3) as usize],
                )
            } else {
                format!(
                    "QUOTA --limit {} --window {} --per {} --exceed {}",
                    1 + rng.below(100),
                    1 + rng.below(1000),
                    ["subject", "adversary", "resource"][rng.below(3) as usize],
                    ["drop", "log", "degrade"][rng.below(3) as usize],
                )
            }
        }
        7 if chains > 0 => format!("tenant_svc{}", rng.below(chains as u64)),
        _ => match rng.below(100) {
            0..=39 => "DROP".to_owned(),
            40..=69 => "ACCEPT".to_owned(),
            70..=79 => format!("LOG --tag t{t}"),
            80..=87 => "TRACE".to_owned(),
            88..=93 => format!("RATELIMIT --rate {} --exceed drop", 1 + rng.below(30)),
            94..=97 => format!("QUOTA --limit {}", 1 + rng.below(50)),
            _ if chains > 0 => format!("tenant_svc{}", rng.below(chains as u64)),
            _ => "DROP".to_owned(),
        },
    };
    line.push_str(&format!(" -j {target}"));
    let _ = FORCED_SLOTS; // slots 0..=7 used above
    line
}

/// One synthetic access probe: which tenant's resource is touched, at
/// which operation, from which program/pc. The differential harness
/// and benchmark translate these into `Packet` environments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthProbe {
    /// Tenant whose object label the access carries.
    pub tenant: usize,
    /// Operation name (member of [`SYNTH_OPS`]).
    pub op: &'static str,
    /// Program path of the accessing process.
    pub program: String,
    /// Entrypoint program counter.
    pub pc: u64,
    /// Resource identity for `-r` selectors.
    pub resource: u64,
}

/// Generates `n` deterministic probes against a `cfg.tenants`-way
/// partitioned rule base, using an independent stream from the rule
/// generator (`seed ^ PROBE_STREAM`).
pub fn synth_probes(cfg: &SynthConfig, n: usize) -> Vec<SynthProbe> {
    const PROBE_STREAM: u64 = 0xA5A5_5A5A_C3C3_3C3C;
    let mut rng = Xorshift64::new(cfg.seed ^ PROBE_STREAM);
    let tenants = cfg.tenants.max(1);
    (0..n)
        .map(|_| {
            let tenant = rng.below(tenants as u64) as usize;
            SynthProbe {
                tenant,
                op: SYNTH_OPS[rng.below(SYNTH_OPS.len() as u64) as usize],
                program: tenant_program(tenant),
                pc: 0x1000 + rng.below(64) * 0x10,
                resource: 0x4000 + rng.below(256),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_is_deterministic() {
        let cfg = SynthConfig::new(42, 2000);
        assert_eq!(synth_ruleset(&cfg), synth_ruleset(&cfg));
        assert_eq!(synth_probes(&cfg, 500), synth_probes(&cfg, 500));
        // A different seed must actually change the output.
        let other = SynthConfig::new(43, 2000);
        assert_ne!(synth_ruleset(&cfg), synth_ruleset(&other));
    }

    #[test]
    fn every_family_appears_per_thousand_rules() {
        let cfg = SynthConfig::new(7, 3000);
        let lines = synth_ruleset(&cfg);
        let input: Vec<&String> = lines.iter().filter(|l| l.contains("-A INPUT")).collect();
        assert_eq!(input.len(), 3000);
        for block in input.chunks(1000) {
            for needle in [
                " -s ",
                " -d ",
                " -p ",
                " -i 0x",
                " -o ",
                " -r 0x",
                " --ctx-missing ",
                " -m ",
                "-j DROP",
                "-j ACCEPT",
                "-j LOG",
                "-j TRACE",
                "-j RATELIMIT",
                "-j QUOTA",
                "-j tenant_svc",
            ] {
                assert!(
                    block.iter().any(|l| l.contains(needle)),
                    "family `{needle}` missing from a 1000-rule block"
                );
            }
        }
    }

    #[test]
    fn every_line_parses_and_renders_stably() {
        use pf_core::lang::{parse_command, Command, RuleOp};
        use pf_core::render_rule;
        use pf_types::Interner;

        let cfg = SynthConfig {
            seed: 99,
            rules: 1500,
            tenants: 32,
            user_chains: 6,
        };
        let mut mac = pf_mac::ubuntu_mini();
        let mut programs = Interner::new();
        for line in synth_ruleset(&cfg) {
            let cmd = parse_command(&line, &mut mac, &mut programs)
                .unwrap_or_else(|e| panic!("`{line}` failed to parse: {e:?}"));
            let Command::Rule(parsed) = cmd else { continue };
            let chain = match &parsed.op {
                RuleOp::InsertHead(c) | RuleOp::Append(c) | RuleOp::Delete(c) => c.clone(),
            };
            // Canonical render must re-parse to an equal rule, and a
            // second render must reproduce the text byte-for-byte.
            let once = render_rule(&parsed.rule, &chain, &mac, &programs);
            let Command::Rule(reparsed) = parse_command(&once, &mut mac, &mut programs)
                .unwrap_or_else(|e| panic!("render `{once}` failed to re-parse: {e:?}"))
            else {
                panic!("render `{once}` no longer parses as a rule");
            };
            let twice = render_rule(&reparsed.rule, &chain, &mac, &programs);
            assert_eq!(once, twice, "render not stable for `{line}`");
        }
    }

    #[test]
    fn zero_seed_does_not_stall_the_prng() {
        let mut rng = Xorshift64::new(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
