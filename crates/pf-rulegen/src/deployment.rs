//! Deployment-consistency analysis (Section 6.3.2).
//!
//! Distributor-generated rules are valid when a program runs in the same
//! environment the distributor generated rules for. This module checks,
//! per program, whether every launch used the same command line and
//! environment and whether the package files were unmodified — the
//! paper found 232 of 318 programs consistent on its trace.

use std::collections::HashMap;

/// One observed program launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchRecord {
    /// The program binary.
    pub program: String,
    /// Hash (or canonical string) of the command-line arguments.
    pub args: String,
    /// Hash (or canonical string) of the relevant environment variables.
    pub env: String,
    /// Whether the package files were unmodified from installation.
    pub package_intact: bool,
}

/// Per-program consistency verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Consistency {
    /// The program binary.
    pub program: String,
    /// Number of observed launches.
    pub launches: u64,
    /// `true` when all launches matched the packaged environment.
    pub consistent: bool,
}

/// Analyzes launch records, returning one verdict per program (sorted).
pub fn analyze(records: &[LaunchRecord]) -> Vec<Consistency> {
    let mut per_prog: HashMap<&str, (&LaunchRecord, u64, bool)> = HashMap::new();
    for r in records {
        match per_prog.get_mut(r.program.as_str()) {
            None => {
                per_prog.insert(&r.program, (r, 1, r.package_intact));
            }
            Some((first, count, consistent)) => {
                *count += 1;
                *consistent =
                    *consistent && r.package_intact && r.args == first.args && r.env == first.env;
            }
        }
    }
    let mut out: Vec<Consistency> = per_prog
        .into_iter()
        .map(|(program, (_, launches, consistent))| Consistency {
            program: program.to_owned(),
            launches,
            consistent,
        })
        .collect();
    out.sort_by(|a, b| a.program.cmp(&b.program));
    out
}

/// Generates a synthetic launch log with the paper's shape: 318 programs
/// of which 232 always launch in their packaged environment.
pub fn synthetic_launches() -> Vec<LaunchRecord> {
    let mut records = Vec::new();
    for i in 0..318u32 {
        let program = format!("/usr/bin/app{i}");
        let launches = 2 + (i % 5) as usize;
        let consistent = i < 232;
        for l in 0..launches {
            records.push(LaunchRecord {
                program: program.clone(),
                args: if consistent || l == 0 {
                    "default-args".to_owned()
                } else {
                    format!("args-variant-{l}")
                },
                env: "default-env".to_owned(),
                package_intact: true,
            });
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_program_detected() {
        let r = LaunchRecord {
            program: "/bin/a".into(),
            args: "x".into(),
            env: "y".into(),
            package_intact: true,
        };
        let out = analyze(&[r.clone(), r.clone(), r]);
        assert_eq!(out.len(), 1);
        assert!(out[0].consistent);
        assert_eq!(out[0].launches, 3);
    }

    #[test]
    fn changed_env_or_modified_package_breaks_consistency() {
        let base = LaunchRecord {
            program: "/bin/a".into(),
            args: "x".into(),
            env: "y".into(),
            package_intact: true,
        };
        let mut changed_env = base.clone();
        changed_env.env = "z".into();
        assert!(!analyze(&[base.clone(), changed_env])[0].consistent);
        let mut modified = base.clone();
        modified.package_intact = false;
        assert!(!analyze(&[base, modified])[0].consistent);
    }

    #[test]
    fn synthetic_launches_match_paper_counts() {
        let out = analyze(&synthetic_launches());
        assert_eq!(out.len(), 318);
        assert_eq!(out.iter().filter(|c| c.consistent).count(), 232);
    }
}
