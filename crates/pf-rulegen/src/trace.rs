//! Runtime-trace events and the synthetic two-week trace.

use pf_core::LogEntry;

/// One resource access observed at one entrypoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Entrypoint identifier (program path + relative pc).
    pub ept: (String, u64),
    /// The LSM operation name.
    pub op: String,
    /// Object label name.
    pub object: String,
    /// `true` if the object was adversary-writable (low integrity).
    pub low_integrity: bool,
    /// Logical timestamp.
    pub ts: u64,
}

/// Converts LOG-target records into trace events (drops records without
/// an entrypoint, e.g. malformed-stack processes).
pub fn trace_from_logs(logs: &[LogEntry]) -> Vec<TraceEvent> {
    logs.iter()
        .filter(|l| !l.ept_prog.is_empty())
        .map(|l| TraceEvent {
            ept: (l.ept_prog.clone(), l.ept_pc),
            op: l.op.name().to_owned(),
            object: l.object.clone(),
            low_integrity: l.adv_write,
            ts: l.ts,
        })
        .collect()
}

/// The invocation thresholds of Table 8.
pub const PAPER_THRESHOLDS: [u64; 9] = [0, 5, 10, 50, 100, 500, 1000, 1149, 5000];

/// One synthetic entrypoint's behaviour profile.
struct Profile {
    /// How many times the entrypoint is invoked over the trace.
    invocations: u64,
    /// `None` = pure (single class); `Some(i)` = the 1-based invocation
    /// index at which the entrypoint first accesses the *other* class.
    flip_at: Option<u64>,
    /// Initial integrity class (`true` = low-integrity accesses).
    starts_low: bool,
}

/// Generates the synthetic runtime trace whose classification dynamics
/// reproduce Table 8 of the paper *exactly*.
///
/// Population (derived by inverting the table's columns):
///
/// * 4229 entrypoints that only ever access high-integrity resources
///   and 480 that only access low-integrity resources;
/// * 525 entrypoints that eventually access **both** — 341 start high,
///   184 start low, with class-switch points distributed as
///   290×2, 78×6, 129×11, 10×51, 14×101, 3×501, and one at exactly
///   invocation 1149 (the paper's worst case);
/// * invocation counts laid out so the number of entrypoints invoked at
///   least `T` times matches the table's "rules produced" column at
///   every threshold.
///
/// The generator is fully deterministic; events are interleaved across
/// entrypoints by timestamp the way a real multi-process trace would be.
pub fn synthetic_trace() -> Vec<TraceEvent> {
    let mut profiles: Vec<Profile> = Vec::with_capacity(5234);

    // Both-class entrypoints: (count, flip index, starts_low).
    // Initial-class split per flip bucket inverts the High/Low columns.
    let both: [(u64, u64, u64); 7] = [
        // (flip, starts_high count, starts_low count)
        (2, 134, 156),
        (6, 52, 26),
        (11, 127, 2),
        (51, 10, 0),
        (101, 14, 0),
        (501, 3, 0),
        (1149, 1, 0),
    ];
    for &(flip, n_high, n_low) in &both {
        for _ in 0..n_high {
            profiles.push(Profile {
                invocations: flip,
                flip_at: Some(flip),
                starts_low: false,
            });
        }
        for _ in 0..n_low {
            profiles.push(Profile {
                invocations: flip,
                flip_at: Some(flip),
                starts_low: true,
            });
        }
    }

    // Pure entrypoints: (invocations, count) buckets completing the
    // survival function S(T) = rules(T) - FP(T) + B_ge(T) of the table.
    let pure: [(u64, u64); 9] = [
        (2, 2615),
        (6, 715),
        (25, 917),
        (70, 185),
        (250, 217),
        (700, 27),
        (1100, 3),
        (3000, 19),
        (15000, 11),
    ];
    // 480 of the pure entrypoints are low-only; alternate assignment
    // until the budget is spent (which bucket they land in does not
    // affect any Table 8 column).
    let mut low_budget = 480u64;
    let mut pure_index = 0u64;
    for &(inv, count) in &pure {
        for _ in 0..count {
            let starts_low = low_budget > 0 && pure_index.is_multiple_of(5);
            pure_index += 1;
            if starts_low {
                low_budget -= 1;
            }
            profiles.push(Profile {
                invocations: inv,
                flip_at: None,
                starts_low,
            });
        }
    }
    assert_eq!(profiles.len(), 5234);

    // Emit events round-robin: on pass `p`, every profile with more
    // than `p` invocations emits its (p+1)-th event.
    let mut events = Vec::new();
    let mut ts = 0u64;
    let max_inv = 15000u64;
    for pass in 0..max_inv {
        for (idx, p) in profiles.iter().enumerate() {
            if pass >= p.invocations {
                continue;
            }
            let invocation = pass + 1; // 1-based.
            let flipped = p.flip_at.map(|f| invocation >= f).unwrap_or(false);
            let low = p.starts_low != flipped;
            ts += 1;
            events.push(TraceEvent {
                ept: (
                    format!("/usr/bin/prog{}", idx / 8),
                    0x1000 + (idx as u64) * 0x10,
                ),
                op: "FILE_OPEN".to_owned(),
                object: if low { "tmp_t" } else { "etc_t" }.to_owned(),
                low_integrity: low,
                ts,
            });
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_trace_has_paper_scale() {
        let t = synthetic_trace();
        let mut epts: Vec<_> = t.iter().map(|e| &e.ept).collect();
        epts.sort();
        epts.dedup();
        assert_eq!(epts.len(), 5234, "5234 distinct entrypoints");
        assert!(
            t.len() > 300_000,
            "hundreds of thousands of entries: {}",
            t.len()
        );
    }

    #[test]
    fn timestamps_are_strictly_increasing() {
        let t = synthetic_trace();
        assert!(t.windows(2).all(|w| w[0].ts < w[1].ts));
    }

    #[test]
    fn trace_from_logs_drops_entryless_records() {
        let mk = |ept: &str| LogEntry {
            ts: 1,
            pid: 1,
            subject: "user_t".into(),
            program: "/bin/sh".into(),
            ept_prog: ept.into(),
            ept_pc: 5,
            op: pf_types::LsmOperation::FileOpen,
            object: "tmp_t".into(),
            resource: "dev:0/ino:1".into(),
            adv_write: true,
            adv_read: true,
            tag: String::new(),
            verdict: "ALLOW".into(),
        };
        let events = trace_from_logs(&[mk("/bin/sh"), mk("")]);
        assert_eq!(events.len(), 1);
        assert!(events[0].low_integrity);
    }
}
