//! Rule suggestion from traces and generation from known
//! vulnerabilities (Section 6.3.1).

use crate::classify::{EntrypointClass, EntrypointStats};
use crate::templates::instantiate_t1;

/// A known-vulnerability record, as the STING-style testing tool of the
/// paper logs it: the victim entrypoint plus the unsafe resource class.
#[derive(Debug, Clone)]
pub struct VulnRecord {
    /// Victim program (or library) containing the entrypoint.
    pub program: String,
    /// Entrypoint relative pc.
    pub ept_pc: u64,
    /// The mediated operation at which the exploit fired.
    pub op: String,
    /// `true` when the unsafe resource was adversary-accessible
    /// (untrusted search path / squat / library / inclusion classes);
    /// `false` for the inverse classes (link following, traversal).
    pub unsafe_is_low_integrity: bool,
}

/// Generates a rule from a known vulnerability.
///
/// The combination of entrypoint and unsafe-resource class is known to
/// need defense, so no false positives are possible; the rule is
/// *generalized* to block the whole unsafe class via adversary
/// accessibility (like rule R7's `-d ~{SYSHIGH}` generalization).
pub fn rules_from_vulnerability(vuln: &VulnRecord) -> String {
    let direction = if vuln.unsafe_is_low_integrity {
        "--accessible"
    } else {
        "--inaccessible"
    };
    format!(
        "pftables -I input -i {:#x} -p {} -o {} -m ADV_ACCESS --write {} -j DROP",
        vuln.ept_pc, vuln.program, vuln.op, direction
    )
}

/// Suggests T1-style rules from classified trace statistics.
///
/// A rule is produced for every entrypoint invoked at least `threshold`
/// times whose horizon classification is single-class:
///
/// * high-only entrypoints must never receive adversary-accessible
///   resources (untrusted search path / library / inclusion defense);
/// * low-only entrypoints must never receive adversary-inaccessible
///   resources (directory traversal / link-following defense).
pub fn rules_from_trace(stats: &[EntrypointStats], threshold: u64) -> Vec<String> {
    let horizon = threshold.max(1);
    let mut rules = Vec::new();
    for s in stats {
        if s.invocations < horizon {
            continue;
        }
        let direction = match s.class_at(horizon) {
            EntrypointClass::HighOnly => "--accessible",
            EntrypointClass::LowOnly => "--inaccessible",
            EntrypointClass::Both => continue,
        };
        rules.push(format!(
            "pftables -I input -i {:#x} -p {} -o {} -m ADV_ACCESS --write {} -j DROP",
            s.ept.1, s.ept.0, s.op, direction
        ));
    }
    rules
}

/// Suggests a T1 rule with an explicit label set (the R1–R4 style),
/// given the labels an entrypoint was observed to access.
pub fn labeled_rule(prog: &str, ept: u64, op: &str, labels: &[&str]) -> String {
    instantiate_t1(prog, ept, &format!("{{{}}}", labels.join("|")), op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::accumulate;
    use crate::trace::TraceEvent;
    use pf_types::Interner;

    fn parses(rule: &str) -> bool {
        let mut mac = pf_mac::ubuntu_mini();
        let mut progs = Interner::new();
        pf_core::lang::parse_rule(rule, &mut mac, &mut progs).is_ok()
    }

    #[test]
    fn vulnerability_rules_parse() {
        let r = rules_from_vulnerability(&VulnRecord {
            program: "/usr/bin/java".into(),
            ept_pc: 0x5d7e,
            op: "FILE_OPEN".into(),
            unsafe_is_low_integrity: true,
        });
        assert!(parses(&r), "{r}");
        assert!(r.contains("--accessible"));
        let r2 = rules_from_vulnerability(&VulnRecord {
            program: "/usr/bin/apache2".into(),
            ept_pc: 0x2d637,
            op: "LINK_READ".into(),
            unsafe_is_low_integrity: false,
        });
        assert!(r2.contains("--inaccessible"));
    }

    #[test]
    fn trace_rules_skip_both_class_entrypoints() {
        let mk = |ept: u64, low: bool, ts: u64| TraceEvent {
            ept: ("/bin/p".into(), ept),
            op: "FILE_OPEN".into(),
            object: String::new(),
            low_integrity: low,
            ts,
        };
        let mut trace = Vec::new();
        for i in 0..10 {
            trace.push(mk(1, false, i)); // Pure high.
            trace.push(mk(2, true, 100 + i)); // Pure low.
            trace.push(mk(3, i % 2 == 0, 200 + i)); // Both.
        }
        let stats = accumulate(&trace);
        let rules = rules_from_trace(&stats, 5);
        assert_eq!(rules.len(), 2);
        assert!(rules.iter().all(|r| parses(r)));
        assert!(rules
            .iter()
            .any(|r| r.contains("--accessible") && r.contains("0x1")));
        assert!(rules
            .iter()
            .any(|r| r.contains("--inaccessible") && r.contains("0x2")));
    }

    #[test]
    fn threshold_filters_rare_entrypoints() {
        let mk = |ts: u64| TraceEvent {
            ept: ("/bin/p".into(), 9),
            op: "FILE_OPEN".into(),
            object: String::new(),
            low_integrity: false,
            ts,
        };
        let stats = accumulate(&[mk(1), mk(2)]);
        assert!(rules_from_trace(&stats, 5).is_empty());
        assert_eq!(rules_from_trace(&stats, 1).len(), 1);
    }

    #[test]
    fn labeled_rules_parse() {
        let r = labeled_rule(
            "/usr/bin/php5",
            0x27ad2c,
            "FILE_OPEN",
            &["httpd_user_script_exec_t"],
        );
        assert!(parses(&r), "{r}");
    }
}
