//! The rule templates of Table 5 (T1, T2).

/// Template T1: restrict an entrypoint to a set of resources.
///
/// `pftables -I input -i <ept> -p <prog> -d ~<resource_set> -o <op> -j DROP`
pub const T1: &str = "pftables -I input -i <ept> -p <prog> -d ~<resource_set> -o <op> -j DROP";

/// Template T2: defend a TOCTTOU race (check/use rule pair).
///
/// Check: record the resource; use: drop on a different resource.
pub const T2: &str = "pftables -I input -i <check_ept> -p <prog> -o <check_op> \
                      -j STATE --set --key <key> --value C_INO\n\
                      pftables -I input -i <use_ept> -p <prog> -o <use_op> \
                      -m STATE --key <key> --cmp C_INO --nequal -j DROP";

/// Instantiates T1.
///
/// # Examples
///
/// ```
/// use pf_rulegen::instantiate_t1;
///
/// let r = instantiate_t1("/usr/bin/java", 0x5d7e, "{SYSHIGH}", "FILE_OPEN");
/// assert!(r.contains("-i 0x5d7e"));
/// assert!(r.contains("-d ~{SYSHIGH}"));
/// ```
pub fn instantiate_t1(prog: &str, ept: u64, resource_set: &str, op: &str) -> String {
    format!("pftables -I input -i {ept:#x} -p {prog} -d ~{resource_set} -o {op} -j DROP")
}

/// Instantiates T2, returning the check rule and the use rule.
pub fn instantiate_t2(
    prog: &str,
    check_ept: u64,
    check_op: &str,
    use_ept: u64,
    use_op: &str,
    key: u64,
) -> [String; 2] {
    [
        format!(
            "pftables -I input -i {check_ept:#x} -p {prog} -o {check_op} \
             -j STATE --set --key {key:#x} --value C_INO"
        ),
        format!(
            "pftables -I input -i {use_ept:#x} -p {prog} -o {use_op} \
             -m STATE --key {key:#x} --cmp C_INO --nequal -j DROP"
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_types::Interner;

    #[test]
    fn t1_instances_parse() {
        let mut mac = pf_mac::ubuntu_mini();
        let mut progs = Interner::new();
        let r = instantiate_t1("/usr/bin/java", 0x5d7e, "{SYSHIGH}", "FILE_OPEN");
        pf_core::lang::parse_rule(&r, &mut mac, &mut progs).unwrap();
    }

    #[test]
    fn t2_instances_parse_and_pair_up() {
        let mut mac = pf_mac::ubuntu_mini();
        let mut progs = Interner::new();
        let [check, use_] = instantiate_t2(
            "/bin/dbus-daemon",
            0x3c750,
            "SOCKET_BIND",
            0x3c786,
            "SOCKET_SETATTR",
            0xbeef,
        );
        let c = pf_core::lang::parse_rule(&check, &mut mac, &mut progs).unwrap();
        let u = pf_core::lang::parse_rule(&use_, &mut mac, &mut progs).unwrap();
        assert!(matches!(
            c.rule.target,
            pf_core::Target::StateSet { key: 0xbeef, .. }
        ));
        assert!(matches!(u.rule.target, pf_core::Target::Drop));
    }
}
