//! Quickstart: build a system, watch an attack succeed, install one
//! firewall rule, watch the same attack get dropped.
//!
//! Run with: `cargo run --example quickstart`

use process_firewall::attacks::ruleset::SAFE_OPEN;
use process_firewall::prelude::*;

fn main() {
    // 1. A standard Ubuntu-flavoured world: filesystem, labels, /tmp.
    let mut kernel = standard_world();

    // 2. The adversary (an unprivileged user) plants a symlink trap:
    //    /tmp/report -> /etc/shadow.
    let adversary = kernel.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
    kernel
        .symlink(adversary, "/etc/shadow", "/tmp/report")
        .unwrap();
    println!("[adversary] planted /tmp/report -> /etc/shadow");

    // 3. A root service writes its report without O_EXCL — classic
    //    link-following victim. Unprotected, the write lands in
    //    /etc/shadow.
    let victim = kernel.spawn("init_t", "/sbin/init", Uid::ROOT, Gid::ROOT);
    let fd = kernel
        .open(victim, "/tmp/report", OpenFlags::creat(0o644))
        .expect("unprotected open follows the trap");
    kernel.write(victim, fd, b"owned\n").unwrap();
    kernel.close(victim, fd).unwrap();
    let shadow = kernel.lookup("/etc/shadow").unwrap();
    println!(
        "[victim]    unprotected write went to /etc/shadow: {:?}",
        kernel.vfs.read(shadow).unwrap()
    );

    // 4. Install ONE generic firewall rule: refuse to follow symlinks
    //    that live in adversary-writable directories and point at
    //    somebody else's files. No program change, no user config.
    kernel.install_rules([SAFE_OPEN]).unwrap();
    println!("[firewall]  installed: {SAFE_OPEN}");

    // 5. The same attack is now dropped during pathname resolution.
    let err = kernel
        .open(victim, "/tmp/report", OpenFlags::creat(0o644))
        .unwrap_err();
    assert!(err.is_firewall_denial());
    println!("[victim]    protected open refused: {err}");

    // 6. Benign behaviour is untouched: the victim's own file works,
    //    and the adversary can still follow links to their own files.
    kernel.unlink(adversary, "/tmp/report").unwrap();
    let fd = kernel
        .open(victim, "/tmp/report", OpenFlags::creat(0o644))
        .expect("no trap, no problem");
    kernel.write(victim, fd, b"boot ok\n").unwrap();
    kernel.close(victim, fd).unwrap();
    println!("[victim]    benign write succeeded — zero false positives");

    // 7. Every denial was logged (how the paper found two new CVEs).
    for log in kernel.firewall.take_logs() {
        if log.verdict == "DENY" {
            println!("[log]       {}", log.to_json());
        }
    }
}
