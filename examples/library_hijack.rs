//! Library hijacking: the untrusted-library-load family (E1/E8).
//!
//! Walks through every way adversaries steer the dynamic linker —
//! `LD_LIBRARY_PATH`, insecure `RPATH` (the Debian/Apache CVE), and a
//! poisoned working directory (the Icecat bug this system found) — and
//! shows rule R1 neutralizing all of them at a single entrypoint.
//!
//! Run with: `cargo run --example library_hijack`

use process_firewall::attacks::ruleset::R1;
use process_firewall::os::loader::{load_library, LinkerConfig};
use process_firewall::prelude::*;

/// (description, linker config, env override, cwd override)
type Attack = (
    &'static str,
    LinkerConfig,
    Option<(&'static str, &'static str)>,
    Option<&'static str>,
);

fn main() {
    let mut kernel = standard_world();

    // The adversary's staging: trojan copies of common libraries in
    // every writable spot they can reach.
    let adversary = kernel.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
    for dir in ["/tmp/evil", "/tmp/svn", "/tmp/downloads"] {
        kernel.mkdir(adversary, dir, 0o777).unwrap();
        let path = format!("{dir}/libc-2.15.so");
        let fd = kernel
            .open(adversary, &path, OpenFlags::creat(0o755))
            .unwrap();
        kernel.write(adversary, fd, b"TROJAN").unwrap();
        kernel.close(adversary, fd).unwrap();
    }
    println!("[adversary] trojans planted in /tmp/evil, /tmp/svn, /tmp/downloads\n");

    let attacks: [Attack; 3] = [
        (
            "LD_LIBRARY_PATH hijack (non-setuid victim)",
            LinkerConfig::default(),
            Some(("LD_LIBRARY_PATH", "/tmp/evil")),
            None,
        ),
        (
            "insecure RPATH baked into the binary (CVE-2006-1564)",
            LinkerConfig {
                rpath: vec!["/tmp/svn".into()],
                ..Default::default()
            },
            None,
            None,
        ),
        (
            "poisoned working directory (the Icecat bug, E8)",
            LinkerConfig::default(),
            Some(("LD_LIBRARY_PATH", ".")),
            Some("/tmp/downloads"),
        ),
    ];

    for protected in [false, true] {
        let mut k = standard_world();
        let adv = k.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
        for dir in ["/tmp/evil", "/tmp/svn", "/tmp/downloads"] {
            k.mkdir(adv, dir, 0o777).unwrap();
            let path = format!("{dir}/libc-2.15.so");
            let fd = k.open(adv, &path, OpenFlags::creat(0o755)).unwrap();
            k.write(adv, fd, b"TROJAN").unwrap();
            k.close(adv, fd).unwrap();
        }
        if protected {
            k.install_rules([R1]).unwrap();
            println!("== with rule R1 installed ==");
        } else {
            println!("== unprotected ==");
        }
        for (name, config, env, cwd) in &attacks {
            let victim = k.spawn("staff_t", "/usr/bin/app", Uid(501), Gid(501));
            if let Some((key, value)) = env {
                k.task_mut(victim).unwrap().setenv(key, value);
            }
            if let Some(dir) = cwd {
                k.task_mut(victim).unwrap().cwd = k.lookup(dir).unwrap();
            }
            let result = load_library(&mut k, victim, "libc-2.15.so", config);
            match result {
                Ok(lib) => println!("  {name}\n      -> loaded {}", lib.path),
                Err(e) => println!("  {name}\n      -> load failed: {e}"),
            }
        }
        println!();
    }
    println!(
        "One rule covers every channel because it constrains WHAT the ld.so\n\
         entrypoint may receive, not HOW the name was constructed."
    );
}
