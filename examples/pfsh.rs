//! `pfsh` — an interactive shell over the simulated kernel.
//!
//! Drive the whole system by hand: spawn processes, run syscalls, plant
//! attacks, install `pftables` rules, and inspect the firewall. Reads
//! commands from stdin (or from a script passed as the first argument).
//!
//! ```text
//! $ cargo run --example pfsh
//! pfsh> spawn user_t /bin/sh 1000
//! pid 1
//! pfsh> as 1 create /tmp/x hello
//! pfsh> rule pftables -o FILE_OPEN -d tmp_t -j DROP
//! pfsh> as 1 cat /tmp/x
//! error: EACCES: process firewall DROP (input#0)
//! pfsh> rules
//! ...
//! ```

use std::io::{BufRead, Write};

use process_firewall::firewall::render_rules;
use process_firewall::prelude::*;

struct Shell {
    kernel: Kernel,
    echo: bool,
}

impl Shell {
    fn run_line(&mut self, line: &str) -> Result<String, String> {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            [] => Ok(String::new()),
            ["#", ..] => Ok(String::new()),
            ["help"] => Ok(HELP.to_owned()),
            ["spawn", label, binary, uid] => {
                let uid: u32 = uid.parse().map_err(|e| format!("bad uid: {e}"))?;
                let pid = self.kernel.spawn(label, binary, Uid(uid), Gid(uid));
                Ok(format!("pid {}", pid.0))
            }
            ["rule", rest @ ..] => {
                let text = rest.join(" ");
                self.kernel
                    .install_rules([text.as_str()])
                    .map_err(|e| e.to_string())?;
                Ok(format!(
                    "installed ({} total)",
                    self.kernel.firewall.rule_count()
                ))
            }
            ["rules"] => Ok(render_rules(&self.kernel.firewall)),
            ["ps"] => {
                let mut out = String::new();
                let mut pids: Vec<u32> = (1..=64)
                    .filter(|p| self.kernel.task(Pid(*p)).is_ok())
                    .collect();
                pids.sort_unstable();
                for p in pids {
                    let t = self.kernel.task(Pid(p)).unwrap();
                    out.push_str(&format!(
                        "pid {:<4} uid {:<6} euid {:<6} {:<12} {} (frames {}, handlers {})\n",
                        p,
                        t.uid.0,
                        t.euid.0,
                        self.kernel.mac.label_name(t.sid),
                        self.kernel.programs.resolve(t.binary),
                        t.user_stack.len(),
                        t.sigactions.len(),
                    ));
                }
                Ok(out)
            }
            ["surface", toggle] => {
                self.kernel.record_surface = *toggle == "on";
                self.kernel.surface.clear();
                Ok(format!("surface recording {toggle}"))
            }
            ["surface"] => {
                let mut out = String::new();
                for e in self.kernel.surface.iter().filter(|e| e.adversary_writable) {
                    out.push_str(&format!(
                        "pid {} looked up `{}` in adversary-writable {} ({})\n",
                        e.pid.0,
                        e.component,
                        self.kernel.mac.label_name(e.dir_label),
                        e.syscall.name(),
                    ));
                }
                if out.is_empty() {
                    out = "no adversary-accessible lookups recorded".into();
                }
                Ok(out)
            }
            ["logs"] => {
                let logs = self.kernel.firewall.take_logs();
                Ok(logs
                    .iter()
                    .map(|l| l.to_json())
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            ["stats"] => {
                let s = self.kernel.firewall.stats();
                Ok(format!(
                    "invocations={} rules_evaluated={} ctx_fetches={} cache_hits={} drops={} \
                     vcache_hits={} vcache_misses={} vcache_uncacheable={} \
                     rulesetc_dispatch={} rulesetc_fallback={}",
                    s.invocations(),
                    s.rules_evaluated(),
                    s.ctx_fetches(),
                    s.cache_hits(),
                    s.drops(),
                    s.vcache_hits(),
                    s.vcache_misses(),
                    s.vcache_uncacheable(),
                    s.rulesetc_dispatch(),
                    s.rulesetc_fallback()
                ))
            }
            ["as", pid, rest @ ..] => {
                let pid = Pid(pid.parse().map_err(|e| format!("bad pid: {e}"))?);
                self.run_syscall(pid, rest)
            }
            other => Err(format!(
                "unknown command `{}` (try `help`)",
                other.join(" ")
            )),
        }
    }

    fn run_syscall(&mut self, pid: Pid, toks: &[&str]) -> Result<String, String> {
        let k = &mut self.kernel;
        let r = |e: PfError| e.to_string();
        match toks {
            ["cat", path] => {
                let fd = k.open(pid, path, OpenFlags::rdonly()).map_err(r)?;
                let data = k.read(pid, fd).map_err(r)?;
                k.close(pid, fd).map_err(r)?;
                Ok(String::from_utf8_lossy(&data).into_owned())
            }
            ["create", path, content @ ..] => {
                let fd = k.open(pid, path, OpenFlags::creat(0o644)).map_err(r)?;
                k.write(pid, fd, content.join(" ").as_bytes()).map_err(r)?;
                k.close(pid, fd).map_err(r)?;
                Ok(String::new())
            }
            ["stat", path] => {
                let st = k.stat(pid, path).map_err(r)?;
                Ok(format!(
                    "{} {} uid={} mode={} label={}",
                    st.dev,
                    st.ino,
                    st.uid.0,
                    st.mode,
                    k.mac.label_name(st.label)
                ))
            }
            ["lstat", path] => {
                let st = k.lstat(pid, path).map_err(r)?;
                Ok(format!(
                    "{} {} symlink={} uid={}",
                    st.dev,
                    st.ino,
                    st.is_symlink(),
                    st.uid.0
                ))
            }
            ["ln", target, link] => {
                k.symlink(pid, target, link).map_err(r)?;
                Ok(String::new())
            }
            ["rm", path] => {
                k.unlink(pid, path).map_err(r)?;
                Ok(String::new())
            }
            ["mkdir", path] => {
                k.mkdir(pid, path, 0o755).map_err(r)?;
                Ok(String::new())
            }
            ["cd", path] => {
                k.chdir(pid, path).map_err(r)?;
                Ok(String::new())
            }
            ["ls", path] => {
                let obj = k.lookup(path).map_err(r)?;
                Ok(k.vfs.readdir(obj).map_err(r)?.join("  "))
            }
            ["bind", path] => {
                let fd = k.bind_unix(pid, path, 0o666).map_err(r)?;
                Ok(format!("fd {}", fd.0))
            }
            ["connect", path] => {
                k.connect_unix(pid, path).map_err(r)?;
                Ok(String::new())
            }
            ["chmod", mode, path] => {
                let mode = u16::from_str_radix(mode, 8).map_err(|e| e.to_string())?;
                k.chmod(pid, path, mode).map_err(r)?;
                Ok(String::new())
            }
            ["kill", target, sig] => {
                let target = Pid(target.parse().map_err(|e| format!("bad pid: {e}"))?);
                let sig = SignalNum(sig.parse().map_err(|e| format!("bad signal: {e}"))?);
                let delivered = k.kill(pid, target, sig).map_err(r)?;
                Ok(format!("delivered={delivered}"))
            }
            ["handler", sig] => {
                let sig = SignalNum(sig.parse().map_err(|e| format!("bad signal: {e}"))?);
                k.sigaction(pid, sig, true).map_err(r)?;
                Ok(String::new())
            }
            ["frame", program, pc, rest @ ..] => {
                // Run a nested command with an entrypoint frame pushed.
                let pc = u64::from_str_radix(pc.trim_start_matches("0x"), 16)
                    .map_err(|e| e.to_string())?;
                let program = (*program).to_owned();
                let rest: Vec<String> = rest.iter().map(|s| (*s).to_owned()).collect();
                let prog_id = self.kernel.programs.intern(&program);
                self.kernel
                    .task_mut(pid)
                    .map_err(|e| e.to_string())?
                    .push_frame(process_firewall::os::Frame {
                        program: prog_id,
                        pc,
                    });
                let refs: Vec<&str> = rest.iter().map(String::as_str).collect();
                let out = self.run_syscall(pid, &refs);
                let _ = self
                    .kernel
                    .task_mut(pid)
                    .map_err(|e| e.to_string())?
                    .pop_frame();
                out
            }
            other => Err(format!("unknown syscall `{}`", other.join(" "))),
        }
    }
}

const HELP: &str = "\
commands:
  spawn <label> <binary> <uid>      create a process
  rule pftables ...                 install a firewall rule
  rules | logs | stats              inspect the firewall
  as <pid> cat <path>               open+read+close
  as <pid> create <path> <text>     open(O_CREAT)+write+close
  as <pid> stat|lstat <path>
  as <pid> ln <target> <link>       symlink
  as <pid> rm|mkdir|cd|ls <path>
  as <pid> bind|connect <path>      UNIX sockets
  as <pid> chmod <octal> <path>
  as <pid> kill <pid> <signum>      send a signal
  as <pid> handler <signum>         install a handler
  as <pid> frame <prog> <0xpc> <syscall...>   run with an entrypoint frame
";

fn main() {
    let mut shell = Shell {
        kernel: standard_world(),
        echo: false,
    };
    let script = std::env::args().nth(1);
    let reader: Box<dyn BufRead> = match &script {
        Some(path) => {
            shell.echo = true;
            Box::new(std::io::BufReader::new(
                std::fs::File::open(path).expect("script file"),
            ))
        }
        None => {
            println!("Process Firewall shell — `help` for commands, ^D to exit");
            Box::new(std::io::BufReader::new(std::io::stdin()))
        }
    };
    let interactive = script.is_none();
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if shell.echo {
            println!("pfsh> {line}");
        } else if interactive {
            print!("pfsh> ");
            let _ = std::io::stdout().flush();
        }
        match shell.run_line(&line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
