//! Rule generation: from runtime logs to installed rules (Section 6.3).
//!
//! OS distributors, not users, produce Process Firewall rules. This
//! example runs the whole pipeline: collect LOG records from a live
//! system, classify entrypoints by the integrity of what they access,
//! pick a safe invocation threshold, suggest rules, and install them —
//! then verifies the suggested rules actually block an attack the trace
//! never saw.
//!
//! Run with: `cargo run --example rule_generation`

use process_firewall::os::interp::{include_file, PYTHON};
use process_firewall::prelude::*;
use process_firewall::rulegen::classify::accumulate;
use process_firewall::rulegen::{
    rules_from_trace, rules_from_vulnerability, sweep_thresholds, trace_from_logs, VulnRecord,
};

fn main() {
    // 1. Run a system with a catch-all LOG rule, exercising a Python
    //    service that (correctly) only loads system modules.
    let mut kernel = standard_world();
    kernel
        .install_rules(["pftables -o FILE_OPEN -j LOG --tag trace"])
        .unwrap();
    let service = kernel.spawn("staff_t", "/usr/bin/python2.7", Uid::ROOT, Gid::ROOT);
    for _ in 0..25 {
        include_file(
            &mut kernel,
            service,
            PYTHON,
            "/usr/bin/service",
            10,
            "/usr/share/pyshared/dstat_helpers.py",
        )
        .unwrap();
    }
    let logs = kernel.firewall.take_logs();
    println!("collected {} LOG records from the deployment", logs.len());

    // 2. Classify entrypoints and sweep thresholds (the Table 8 method).
    let trace = trace_from_logs(&logs);
    let stats = accumulate(&trace);
    for row in sweep_thresholds(&stats, &[0, 10, 20]) {
        println!(
            "threshold {:>3}: {} high-only, {} low-only, {} both -> {} rules, {} would be FPs",
            row.threshold,
            row.high_only,
            row.low_only,
            row.both,
            row.rules_produced,
            row.false_positives
        );
    }

    // 3. Suggest rules at a threshold the trace supports.
    let suggested = rules_from_trace(&stats, 20);
    println!("\nsuggested rules:");
    for r in &suggested {
        println!("  {r}");
    }

    // 4. Install them and run an attack the trace never saw: a trojan
    //    module planted in /tmp, imported via the same entrypoint.
    let refs: Vec<&str> = suggested.iter().map(String::as_str).collect();
    kernel.install_rules(refs).unwrap();
    let adversary = kernel.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
    let fd = kernel
        .open(adversary, "/tmp/dstat_helpers.py", OpenFlags::creat(0o644))
        .unwrap();
    kernel.write(adversary, fd, b"evil").unwrap();
    kernel.close(adversary, fd).unwrap();
    let err = include_file(
        &mut kernel,
        service,
        PYTHON,
        "/usr/bin/service",
        10,
        "/tmp/dstat_helpers.py",
    )
    .unwrap_err();
    println!("\nattack through the profiled entrypoint: {err}");
    assert!(err.is_firewall_denial());

    // 5. The benign workload the rules were generated from still runs.
    include_file(
        &mut kernel,
        service,
        PYTHON,
        "/usr/bin/service",
        10,
        "/usr/share/pyshared/dstat_helpers.py",
    )
    .unwrap();
    println!("benign system-module import unaffected");

    // 6. Rules can also be generated straight from vulnerability
    //    reports (no trace needed, no false positives possible).
    let vuln_rule = rules_from_vulnerability(&VulnRecord {
        program: "/usr/bin/java".into(),
        ept_pc: 0x5d7e,
        op: "FILE_OPEN".into(),
        unsafe_is_low_integrity: true,
    });
    println!("\nrule generated from a vulnerability report:\n  {vuln_rule}");
}
