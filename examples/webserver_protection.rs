//! Webserver protection: the paper's motivating scenario end-to-end.
//!
//! A web server must read both authentication data and user web content,
//! so least-privilege permissions cannot separate the two — but the
//! *program instructions* that request them are distinct, and the
//! Process Firewall can tell them apart by entrypoint. This example
//! drives three attacks against an Apache model and blocks all of them
//! with rules, then shows that moving the `SymLinksIfOwnerMatch` checks
//! into the firewall also serves requests with fewer system calls.
//!
//! Run with: `cargo run --example webserver_protection`

use process_firewall::attacks::ruleset::{R4, R8};
use process_firewall::attacks::webserver::{add_page, Apache, APACHE_DOCROOT_RULE};
use process_firewall::os::interp::{include_file, PHP};
use process_firewall::prelude::*;

fn main() {
    let mut kernel = standard_world();
    let mut apache = Apache::start(&mut kernel);
    println!("== Attack 1: directory traversal through a planted symlink ==");
    // The naive `..` filter is lexical; a symlink inside the docroot
    // escapes it.
    kernel
        .put_symlink("/var/www/exports", "/etc", Uid(1000))
        .unwrap();
    let leaked = apache
        .handle_request(&mut kernel, "/exports/passwd")
        .unwrap();
    println!("unprotected: leaked {} bytes of /etc/passwd", leaked.len());
    kernel.install_rules([APACHE_DOCROOT_RULE]).unwrap();
    let err = apache
        .handle_request(&mut kernel, "/exports/passwd")
        .unwrap_err();
    println!("protected:   {err}");
    assert!(apache.handle_request(&mut kernel, "/index.html").is_ok());
    println!("benign:      /index.html still served\n");

    println!("== Attack 2: PHP local file inclusion (Joomla-style) ==");
    let php = kernel.spawn("httpd_t", "/usr/bin/php5", Uid(33), Gid(33));
    let adversary = kernel.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
    let fd = kernel
        .open(adversary, "/tmp/payload.php", OpenFlags::creat(0o644))
        .unwrap();
    kernel
        .write(adversary, fd, b"<?php system($_GET['cmd']); ?>")
        .unwrap();
    kernel.close(adversary, fd).unwrap();
    let included = include_file(
        &mut kernel,
        php,
        PHP,
        "/var/www/index.php",
        1,
        "/tmp/payload.php",
    );
    println!("unprotected: attacker code included: {}", included.is_ok());
    kernel.install_rules([R4]).unwrap();
    let err = include_file(
        &mut kernel,
        php,
        PHP,
        "/var/www/index.php",
        1,
        "/tmp/payload.php",
    )
    .unwrap_err();
    println!("protected:   {err}");
    let legit = include_file(
        &mut kernel,
        php,
        PHP,
        "/var/www/index.php",
        1,
        "/var/www/components/gcalendar.php",
    );
    println!("benign:      component include ok: {}\n", legit.is_ok());

    println!("== Attack 3 + performance: SymLinksIfOwnerMatch ==");
    kernel
        .put_symlink("/var/www/leak", "/etc/passwd", Uid(1000))
        .unwrap();
    // Program checks block the leak but cost lstats per component.
    apache.symlinks_if_owner_match = true;
    let uri = add_page(&mut kernel, 5);
    let t0 = kernel.now();
    apache.handle_request(&mut kernel, &uri).unwrap();
    let with_checks = kernel.now() - t0;
    assert!(apache.handle_request(&mut kernel, "/leak").is_err());
    // The firewall rule gives the same protection with zero extra
    // syscalls.
    apache.symlinks_if_owner_match = false;
    kernel.install_rules([R8]).unwrap();
    let t1 = kernel.now();
    apache.handle_request(&mut kernel, &uri).unwrap();
    let with_rule = kernel.now() - t1;
    let err = apache.handle_request(&mut kernel, "/leak").unwrap_err();
    println!("protected:   {err}");
    println!("syscalls per request: {with_checks} with program checks, {with_rule} with rule R8");
    assert!(with_rule < with_checks);
    println!("=> the firewall is both more secure (race-free) and faster");
}
