//! Signal-handler races: the OpenSSH grace-alarm scenario (E5).
//!
//! Signal races are the attack class program checks fundamentally cannot
//! fix: the race is *inside the kernel's delivery decision*. The paper's
//! rules R9–R12 keep per-process state ("is a handler running?") in the
//! firewall's STATE dictionary and drop re-entrant deliveries of handled
//! blockable signals, system-wide.
//!
//! Run with: `cargo run --example signal_race`

use process_firewall::attacks::ruleset::{R10, R11, R12, R9};
use process_firewall::prelude::*;

fn main() {
    for protected in [false, true] {
        let mut kernel = standard_world();
        if protected {
            kernel.install_rules([R9, R10, R11, R12]).unwrap();
            println!("== with signal-chain rules (R9-R12) ==");
        } else {
            println!("== unprotected ==");
        }

        // sshd installs its (non-reentrant) SIGALRM grace handler.
        let sshd = kernel.spawn("sshd_t", "/usr/sbin/sshd", Uid::ROOT, Gid::ROOT);
        kernel.sigaction(sshd, SignalNum::SIGALRM, true).unwrap();
        let trigger = kernel.spawn("init_t", "/bin/sh", Uid::ROOT, Gid::ROOT);

        // Two alarms in quick succession.
        let first = kernel.kill(trigger, sshd, SignalNum::SIGALRM).unwrap();
        let second = kernel.kill(trigger, sshd, SignalNum::SIGALRM).unwrap();
        let depth = kernel.task(sshd).unwrap().in_handler;
        println!("  first alarm delivered:  {first}");
        println!("  second alarm delivered: {second}   (handler depth now {depth})");
        if depth >= 2 {
            println!("  -> NESTED non-reentrant handler: heap corruption, CVE-2006-5051");
        } else {
            println!("  -> re-entrant delivery dropped by the firewall");
        }

        // The handler finishes; deliveries resume.
        kernel.sigreturn(sshd).unwrap();
        if depth >= 2 {
            kernel.sigreturn(sshd).unwrap();
        }
        let after = kernel.kill(trigger, sshd, SignalNum::SIGALRM).unwrap();
        println!("  alarm after sigreturn:  {after}   (no false positives)\n");
    }

    println!(
        "Note the division of labour: SIGNAL_MATCH (has handler, not SIGKILL/SIGSTOP)\n\
         gates the rules; STATE 'sig' tracks handler entry (R11) and exit via the\n\
         sigreturn syscall on the syscallbegin chain (R12); R10 drops the race."
    );
}
