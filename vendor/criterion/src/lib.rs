//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this crate mirrors
//! the subset of criterion's API the workspace benches use —
//! `benchmark_group`, `sample_size`/`warm_up_time`/`measurement_time`,
//! `bench_function`, `Bencher::iter`/`iter_with_setup`, and the
//! `criterion_group!`/`criterion_main!` macros — on a simple wall-clock
//! harness. Output is mean ns/iter per benchmark; no statistics engine,
//! no HTML reports.

use std::time::{Duration, Instant};

/// Top-level benchmark manager handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(300),
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm-up: run until the warm-up budget is spent, tracking how
        // many iterations fit so the timed phase can batch sensibly.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            b.elapsed = Duration::ZERO;
            b.iters = 1;
            f(&mut b);
            warm_iters += 1;
        }
        let per_call = self.warm_up.as_nanos() as u64 / warm_iters.max(1);
        // Timed phase: `sample_size` samples, each batching enough calls
        // to fill measurement_time / sample_size.
        let per_sample_ns = (self.measurement.as_nanos() as u64 / self.sample_size as u64).max(1);
        let batch = (per_sample_ns / per_call.max(1)).clamp(1, 1_000_000);
        let mut total = Duration::ZERO;
        let mut total_iters: u64 = 0;
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            b.iters = batch;
            f(&mut b);
            total += b.elapsed;
            total_iters += batch;
        }
        let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
        println!("{}/{}: {:.1} ns/iter ({} iters)", self.name, id, mean_ns, total_iters);
        self
    }

    /// Ends the group (printing is per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, batching `iters` calls per invocation.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` only, re-running `setup` untimed for every call.
    pub fn iter_with_setup<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Re-export matching criterion's `black_box` convenience.
pub use std::hint::black_box;

/// Declares a group function running each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        let mut count = 0u64;
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_with_setup_excludes_setup() {
        let mut b = Bencher {
            iters: 3,
            elapsed: Duration::ZERO,
        };
        let mut calls = 0;
        b.iter_with_setup(|| 5u64, |v| calls += v);
        assert_eq!(calls, 15);
    }
}
