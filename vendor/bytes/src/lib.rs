//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses: an
//! immutable, cheaply clonable byte buffer backed by `Arc<[u8]>`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable chunk of contiguous memory.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates `Bytes` from a static slice without copying semantics
    /// mattering to callers (this stand-in copies into an `Arc`).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies the given slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a copy of the contents as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &**self == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &**self == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        &**self == &other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        &**self == &other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], b"abc");
        assert_eq!(b, *b"abc");
        let c = b.clone();
        assert_eq!(c, b);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"xy").to_vec(), vec![b'x', b'y']);
    }
}
