//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate
//! reimplements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait, literal-regex string strategies, integer
//! ranges, tuples, `Just`, `prop_oneof!`, `prop::collection::vec`,
//! `prop::option::of`, `prop::sample::select`, and the [`proptest!`]
//! macro with `prop_assert*`/`prop_assume!`. Generation is seeded and
//! deterministic. There is **no shrinking**: a failing case panics with
//! the generated inputs' debug rendering instead of a minimized one.

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic generator state (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy yielding one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u32,
}

impl<V: Debug> Union<V> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty strategy range");
                    self.start + rng.below(span) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)+) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized + Debug {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for the full domain of a primitive.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! any_primitive {
    ($($t:ty => $draw:expr;)+) => {
        $(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let draw: fn(u64) -> $t = $draw;
                    draw(rng.next_u64())
                }
            }

            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;

                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )+
    };
}

any_primitive! {
    bool => |bits| bits & 1 == 1;
    u8 => |bits| bits as u8;
    u16 => |bits| bits as u16;
    u32 => |bits| bits as u32;
    u64 => |bits| bits;
    usize => |bits| bits as usize;
}

/// Returns the canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ---------------------------------------------------------------------
// Literal-regex string strategies.
// ---------------------------------------------------------------------

/// One parsed pattern element: a set of candidate chars plus a
/// repetition range.
#[derive(Debug, Clone)]
struct PatternUnit {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses the regex subset proptest string strategies use here:
/// char classes `[a-z_.]`, the dot, literal chars, `\n`/`\t` escapes,
/// alternation groups of single atoms `(.|\n)`, and `{m,n}`/`{n}`
/// repetition suffixes.
fn parse_pattern(pattern: &str) -> Option<Vec<PatternUnit>> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut units = Vec::new();
    while i < chars.len() {
        let mut set = Vec::new();
        match chars[i] {
            '[' => {
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let c = chars[i];
                    if c == '\\' {
                        i += 1;
                        set.push(unescape(*chars.get(i)?));
                    } else if chars.get(i + 1) == Some(&'-') && chars.get(i + 2) != Some(&']') {
                        let hi = *chars.get(i + 2)?;
                        for v in c..=hi {
                            set.push(v);
                        }
                        i += 2;
                    } else {
                        set.push(c);
                    }
                    i += 1;
                }
                if i >= chars.len() {
                    return None; // Unclosed class.
                }
                i += 1; // Skip `]`.
            }
            '(' => {
                // Alternation group of single atoms: `(.|\n)`.
                i += 1;
                while i < chars.len() && chars[i] != ')' {
                    match chars[i] {
                        '.' => set.extend(dot_chars()),
                        '|' => {}
                        '\\' => {
                            i += 1;
                            set.push(unescape(*chars.get(i)?));
                        }
                        c => set.push(c),
                    }
                    i += 1;
                }
                if i >= chars.len() {
                    return None;
                }
                i += 1;
            }
            '.' => {
                set.extend(dot_chars());
                i += 1;
            }
            '\\' => {
                i += 1;
                set.push(unescape(*chars.get(i)?));
                i += 1;
            }
            c => {
                set.push(c);
                i += 1;
            }
        }
        // Optional repetition suffix.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..].iter().position(|&c| c == '}')? + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
                None => {
                    let n = body.trim().parse().ok()?;
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        if set.is_empty() {
            return None;
        }
        units.push(PatternUnit {
            chars: set,
            min,
            max,
        });
    }
    Some(units)
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

/// The candidate set for `.`: printable ASCII (proptest's `.` excludes
/// newline; a small set keeps adversarial coverage while staying fast).
fn dot_chars() -> Vec<char> {
    let mut v: Vec<char> = (' '..='~').collect();
    v.push('\u{1}');
    v.push('é');
    v
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let units = parse_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern `{self}`"));
        let mut out = String::new();
        for unit in &units {
            let n = unit.min + rng.below((unit.max - unit.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(unit.chars[rng.below(unit.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// prop:: namespace.
// ---------------------------------------------------------------------

/// The `prop::` namespace mirrored from proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Strategy for `Vec<S::Value>` with length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generates vectors whose length is in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::*;

        /// Strategy for `Option<S::Value>`, mostly `Some`.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// Generates `Some` three times out of four.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::*;

        /// Strategy choosing uniformly from a fixed pool.
        pub struct Select<T> {
            pool: Vec<T>,
        }

        /// Picks one element of `pool` per case.
        pub fn select<T: Clone + Debug>(pool: Vec<T>) -> Select<T> {
            assert!(!pool.is_empty(), "select pool must be non-empty");
            Select { pool }
        }

        impl<T: Clone + Debug> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.pool[rng.below(self.pool.len() as u64) as usize].clone()
            }
        }
    }
}

// ---------------------------------------------------------------------
// Runner configuration and macros.
// ---------------------------------------------------------------------

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Weighted/unweighted choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( ($weight as u32,
                ::std::boxed::Box::new($arm)
                    as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>) ),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (1u32,
                ::std::boxed::Box::new($arm)
                    as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>) ),+
        ])
    };
}

/// Asserts inside a proptest body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "prop_assert failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq failed: {:?} != {:?}", a, b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq failed: {:?} != {:?}: {}", a, b, format!($($fmt)+)
            ));
        }
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares property tests. Each case generates fresh inputs from the
/// given strategies and runs the body; any `prop_assert*` failure panics
/// with the inputs that produced it (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )+) => {
        $(
            #[test]
            fn $name() {
                let __config = $cfg;
                let __strats = ( $($strat,)+ );
                // A fixed per-test seed keeps runs reproducible.
                let mut __seed: u64 = 0xcafe_f00d;
                for __b in stringify!($name).bytes() {
                    __seed = __seed.wrapping_mul(31).wrapping_add(__b as u64);
                }
                let mut __rng = $crate::TestRng::new(__seed);
                for __case in 0..__config.cases {
                    let ( $($arg,)+ ) = {
                        let ( $(ref $arg,)+ ) = __strats;
                        ( $( $crate::Strategy::generate($arg, &mut __rng), )+ )
                    };
                    let __inputs = format!("{:?}", ( $(&$arg,)+ ));
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs: {}",
                            __case + 1, __config.cases, __msg, __inputs
                        );
                    }
                }
            }
        )+
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategies_match_their_class() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        let free = Strategy::generate(&".{0,120}", &mut rng);
        assert!(free.chars().count() <= 120);
    }

    #[test]
    fn ranges_tuples_and_collections_generate_in_bounds() {
        let mut rng = crate::TestRng::new(9);
        for _ in 0..100 {
            let v = Strategy::generate(&(0u8..16), &mut rng);
            assert!(v < 16);
            let (a, b) = Strategy::generate(&(0usize..8, 0u64..4), &mut rng);
            assert!(a < 8 && b < 4);
            let xs = Strategy::generate(&prop::collection::vec(0u32..5, 1..9), &mut rng);
            assert!((1..9).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_pipeline_works(x in 0u64..100, flip in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            if flip {
                prop_assert_eq!(x + 1, 1 + x);
            }
        }
    }

    proptest! {
        #[test]
        fn oneof_and_map(v in prop_oneof![2 => Just(1u8), 1 => (10u8..20)]) {
            prop_assert!(v == 1 || (10..20).contains(&v));
        }
    }
}
