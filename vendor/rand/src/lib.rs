//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! Provides a deterministic, seedable generator (`StdRng`) built on
//! SplitMix64/xoshiro256**, plus the `Rng`/`SeedableRng` trait surface
//! the workspace uses: `random::<T>()`, `random_range`, and
//! `seed_from_u64`. Statistical quality is adequate for workload mixing
//! and property tests; this is not a cryptographic generator.

/// Types that can be sampled uniformly by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `next_u64` outputs.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for u8 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as u8
    }
}

/// The raw-output half of a generator.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Samples uniformly from `[low, high)` (u64 domain).
    fn random_range(&mut self, range: std::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        // Rejection-free modulo is fine for simulation workloads.
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore> Rng for R {}

/// Generators constructible from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding recipe.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.random();
            let y: f64 = b.random();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let v = c.random_range(3..9);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        assert_ne!(va, vb);
    }
}
