//! Contention soak for the decision-event tracing plane.
//!
//! Eight worker threads (distinct pids) evaluate through one shared
//! [`ProcessFirewall`] at `always` sampling while a reloader thread
//! hot-swaps the ruleset and a dedicated drainer consumes the per-shard
//! event rings live. The assertions are the plane's whole contract:
//!
//! 1. **Exact accounting.** At quiescence
//!    `emitted == drained + dropped`, and `emitted` equals exactly one
//!    decision event per invocation plus two control events per reload
//!    (begin + commit) — nothing lost, nothing double-counted.
//! 2. **No torn events.** Every drained record is internally
//!    consistent: the pid belongs to a worker, the verdict matches what
//!    that operation must produce under the installed rules, and
//!    control events carry the expected rule-diff/rule-count payloads.
//! 3. **Snapshot ordering.** Per worker (events sorted by their claim
//!    sequence), the recorded snapshot generation never decreases: a
//!    task may lag the newest ruleset but never travels back in time.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use process_firewall::firewall::{
    EvalEnv, EventKind, EventVerdict, ObjectInfo, OptLevel, ProcessFirewall, SamplingMode,
    SignalInfo, TaskSession,
};
use process_firewall::mac::{ubuntu_mini, MacPolicy};
use process_firewall::types::{
    DeviceId, Gid, InodeNum, Interner, LsmOperation, Mode, Pid, ProgramId, ResourceId, SecId, Uid,
};

const WORKERS: usize = 8;
const INVOCATIONS_PER_WORKER: usize = 5_000;
const MIN_RELOADS: u64 = 20;
const BASE_PID: u32 = 100;

/// The base ruleset: FILE_OPEN on the bench inode denies, FILE_READ
/// accepts, anything else falls through to the default allow.
const BASE: [&str; 2] = [
    "pftables -o FILE_OPEN -r 0x5 -j DROP",
    "pftables -o FILE_READ -j ACCEPT",
];
/// The extended ruleset the reloader alternates to: one extra rule no
/// worker operation can match, so verdicts are identical either way.
const EXTRA: &str = "pftables -o FILE_WRITE -d shadow_t -j DROP";

/// The operations each worker cycles through, with the verdict each one
/// must produce under both rulesets.
const OPS: [(LsmOperation, EventVerdict); 3] = [
    (LsmOperation::FileOpen, EventVerdict::Deny),
    (LsmOperation::FileRead, EventVerdict::Allow),
    (LsmOperation::FileGetattr, EventVerdict::DefaultAllow),
];

struct Env {
    mac: MacPolicy,
    programs: Interner,
    subject: SecId,
    program: ProgramId,
    object: ObjectInfo,
    pid: Pid,
}

impl Env {
    fn new(pid: Pid) -> Self {
        let mac = ubuntu_mini();
        let mut programs = Interner::new();
        let subject = mac.lookup_label("httpd_t").unwrap();
        let program = programs.intern("/usr/bin/apache2");
        let sid = mac.lookup_label("etc_t").unwrap();
        Env {
            mac,
            programs,
            subject,
            program,
            object: ObjectInfo {
                sid,
                resource: ResourceId::File {
                    dev: DeviceId(0),
                    ino: InodeNum(5),
                },
                owner: Uid(0),
                group: Gid(0),
                mode: Mode::FILE_DEFAULT,
            },
            pid,
        }
    }
}

impl EvalEnv for Env {
    fn subject_sid(&self) -> SecId {
        self.subject
    }
    fn program(&self) -> ProgramId {
        self.program
    }
    fn pid(&self) -> Pid {
        self.pid
    }
    fn unwind_entrypoint(&mut self) -> Option<(ProgramId, u64)> {
        Some((self.program, 0x100))
    }
    fn object(&self) -> Option<ObjectInfo> {
        Some(self.object)
    }
    fn link_target_owner(&mut self) -> Option<Uid> {
        None
    }
    fn syscall_arg(&self, _idx: usize) -> u64 {
        0
    }
    fn signal(&self) -> Option<SignalInfo> {
        None
    }
    fn mac(&self) -> &MacPolicy {
        &self.mac
    }
    fn program_name(&self, id: ProgramId) -> String {
        self.programs.resolve(id).to_owned()
    }
    fn state_get(&self, _key: u64) -> Option<u64> {
        None
    }
    fn state_set(&mut self, _key: u64, _value: u64) {}
    fn state_unset(&mut self, _key: u64) {}
    fn cache_get(&self, _slot: u8) -> Option<u64> {
        None
    }
    fn cache_put(&mut self, _slot: u8, _value: u64) {}
    fn now(&self) -> u64 {
        0
    }
}

#[test]
fn event_plane_exact_accounting_under_8_thread_soak() {
    let fw = Arc::new(ProcessFirewall::new(OptLevel::EptSpc));
    {
        let mut env = Env::new(Pid(1));
        fw.install_all(BASE, &mut env.mac, &mut env.programs)
            .unwrap();
    }
    // Armed after the install, so the batch above is not recorded and
    // the control-event ledger starts at zero.
    fw.set_sampling(SamplingMode::Always);

    let start = Barrier::new(WORKERS + 2); // workers + reloader + main
    let workers_done = AtomicBool::new(false);
    let all_done = AtomicBool::new(false);

    let (events, reloads) = std::thread::scope(|s| {
        let reloader = {
            let fw = Arc::clone(&fw);
            let (workers_done, start) = (&workers_done, &start);
            s.spawn(move || {
                let mut env = Env::new(Pid(2));
                let mut extended: Vec<&str> = BASE.to_vec();
                extended.push(EXTRA);
                start.wait();
                let mut n = 0u64;
                while !workers_done.load(Ordering::Relaxed) || n < MIN_RELOADS {
                    let lines: &[&str] = if n.is_multiple_of(2) {
                        &extended
                    } else {
                        &BASE
                    };
                    fw.reload(lines.iter().copied(), &mut env.mac, &mut env.programs)
                        .expect("hot reload");
                    n += 1;
                    std::thread::yield_now();
                }
                n
            })
        };

        let drainer = {
            let fw = Arc::clone(&fw);
            let all_done = &all_done;
            s.spawn(move || {
                let mut all = Vec::new();
                while !all_done.load(Ordering::Relaxed) {
                    all.extend(fw.events().drain());
                    std::thread::yield_now();
                }
                all.extend(fw.events().drain());
                all
            })
        };

        let workers: Vec<_> = (0..WORKERS)
            .map(|i| {
                let fw = Arc::clone(&fw);
                let start = &start;
                s.spawn(move || {
                    let mut env = Env::new(Pid(BASE_PID + i as u32));
                    let mut session = TaskSession::new();
                    start.wait();
                    for j in 0..INVOCATIONS_PER_WORKER {
                        let (op, _) = OPS[j % OPS.len()];
                        session.evaluate(&fw, &mut env, op);
                    }
                })
            })
            .collect();

        start.wait();
        for w in workers {
            w.join().unwrap();
        }
        workers_done.store(true, Ordering::Relaxed);
        let reloads = reloader.join().unwrap();
        all_done.store(true, Ordering::Relaxed);
        (drainer.join().unwrap(), reloads)
    });

    // 1. Exact accounting at quiescence.
    let (emitted, drained, dropped) = (
        fw.events().emitted(),
        fw.events().drained(),
        fw.events().dropped(),
    );
    let decisions_expected = (WORKERS * INVOCATIONS_PER_WORKER) as u64;
    assert!(reloads >= MIN_RELOADS);
    assert_eq!(
        emitted,
        decisions_expected + 2 * reloads,
        "one decision event per invocation plus begin+commit per reload"
    );
    assert_eq!(
        emitted,
        drained + dropped,
        "accounting must balance exactly at quiescence"
    );
    assert_eq!(events.len() as u64, drained);

    // 2. No torn events. Claim sequences are unique; every field
    // combination is one a real invocation could have produced.
    let final_generation = fw.generation();
    let verdict_of: HashMap<&'static str, EventVerdict> =
        OPS.iter().map(|&(op, v)| (op.name(), v)).collect();
    let mut seqs = HashSet::with_capacity(events.len());
    let mut decisions = 0u64;
    let mut begins = 0u64;
    let mut commits = 0u64;
    let mut by_pid: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
    for ev in &events {
        assert!(seqs.insert(ev.seq), "duplicate claim sequence {}", ev.seq);
        assert!(ev.generation <= final_generation);
        match ev.kind {
            EventKind::Decision => {
                decisions += 1;
                let worker = ev.pid.checked_sub(BASE_PID);
                assert!(
                    worker.is_some_and(|w| (w as usize) < WORKERS),
                    "decision event carries a non-worker pid {}",
                    ev.pid
                );
                let expected = verdict_of
                    .get(ev.op.name())
                    .unwrap_or_else(|| panic!("unexpected op {}", ev.op.name()));
                assert_eq!(
                    ev.verdict,
                    *expected,
                    "op {} must always produce {:?}",
                    ev.op.name(),
                    expected
                );
                by_pid
                    .entry(ev.pid)
                    .or_default()
                    .push((ev.seq, ev.generation));
            }
            EventKind::ReloadBegin => {
                begins += 1;
                assert_eq!(ev.verdict, EventVerdict::None);
                assert!(
                    ev.aux2 == 2 || ev.aux2 == 3,
                    "reload begins from a 2- or 3-rule snapshot, saw {}",
                    ev.aux2
                );
            }
            EventKind::ReloadCommit => {
                commits += 1;
                assert!(
                    ev.aux <= 1,
                    "alternating reloads differ by at most one rule, saw diff {}",
                    ev.aux
                );
                assert!(ev.aux2 == 2 || ev.aux2 == 3);
            }
            EventKind::ReloadAbort => panic!("no reload in this soak may abort"),
        }
    }
    assert_eq!(decisions + begins + commits, drained);
    assert!(
        begins >= 1 && commits >= 1,
        "the drainer must observe reload self-observability events"
    );

    // 3. Per-task generation monotonicity in claim order. Ring
    // overwrites may thin each worker's sequence, but a subsequence of
    // a non-decreasing series is still non-decreasing.
    for (pid, mut row) in by_pid {
        row.sort_unstable();
        let mut last = 0u64;
        for (seq, generation) in row {
            assert!(
                generation >= last,
                "pid {pid}: generation went backwards at seq {seq} ({generation} < {last})"
            );
            last = generation;
        }
    }
}

/// Single-threaded control-event semantics: a successful batch emits
/// begin+commit with the rule diff; a failed batch emits begin+abort
/// and publishes nothing.
#[test]
fn reload_control_events_record_commit_and_abort() {
    let fw = ProcessFirewall::new(OptLevel::EptSpc);
    let mut env = Env::new(Pid(1));
    fw.install_all(BASE, &mut env.mac, &mut env.programs)
        .unwrap();
    fw.set_sampling(SamplingMode::Always);

    let mut extended: Vec<&str> = BASE.to_vec();
    extended.push(EXTRA);
    fw.reload(extended.iter().copied(), &mut env.mac, &mut env.programs)
        .unwrap();
    // Parses fine but fails in apply (built-in chains cannot be
    // deleted), so the batch reaches its begin event and then aborts.
    let err = fw.reload(["pftables -X input"], &mut env.mac, &mut env.programs);
    assert!(err.is_err(), "deleting a built-in chain must fail");

    let events = fw.events().drain();
    let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![
            EventKind::ReloadBegin,
            EventKind::ReloadCommit,
            EventKind::ReloadBegin,
            EventKind::ReloadAbort,
        ]
    );
    let commit = &events[1];
    assert_eq!(commit.aux, 1, "one rule added");
    assert_eq!(commit.aux2, 3, "three rules after the commit");
    assert_eq!(commit.generation, fw.generation());
    let abort = &events[3];
    assert_eq!(
        abort.generation,
        fw.generation(),
        "an abort leaves the pre-reload generation live"
    );
    assert_eq!(abort.aux2, 3, "the surviving snapshot still has 3 rules");
    assert_eq!(fw.rule_count(), 3);
}
