//! Adversarial label content through the firewall-level exporters.
//!
//! User chain names and rule text are free-form `pftables` tokens: the
//! single-quote tokenizer lets them carry double quotes, backslashes,
//! spaces, and even raw newlines. The Prometheus and JSON exporters
//! must escape every such value — one hostile rule name must not be
//! able to forge metric lines or truncate the JSON document.

use process_firewall::firewall::{
    EvalEnv, ObjectInfo, OptLevel, ProcessFirewall, SamplingMode, SignalInfo,
};
use process_firewall::mac::{ubuntu_mini, MacPolicy};
use process_firewall::types::{
    DeviceId, Gid, InodeNum, Interner, LsmOperation, Mode, Pid, ProgramId, ResourceId, SecId, Uid,
    Verdict,
};

/// A chain name exercising every character the exporters must escape:
/// a double quote, a backslash, and a raw newline.
const EVIL: &str = "ev\"il\\cha\nin";

struct Env {
    mac: MacPolicy,
    programs: Interner,
    subject: SecId,
    program: ProgramId,
    object: ObjectInfo,
}

impl Env {
    fn new() -> Self {
        let mac = ubuntu_mini();
        let mut programs = Interner::new();
        let subject = mac.lookup_label("httpd_t").unwrap();
        let program = programs.intern("/usr/bin/apache2");
        let sid = mac.lookup_label("etc_t").unwrap();
        Env {
            mac,
            programs,
            subject,
            program,
            object: ObjectInfo {
                sid,
                resource: ResourceId::File {
                    dev: DeviceId(0),
                    ino: InodeNum(5),
                },
                owner: Uid(0),
                group: Gid(0),
                mode: Mode::FILE_DEFAULT,
            },
        }
    }
}

impl EvalEnv for Env {
    fn subject_sid(&self) -> SecId {
        self.subject
    }
    fn program(&self) -> ProgramId {
        self.program
    }
    fn pid(&self) -> Pid {
        Pid(1)
    }
    fn unwind_entrypoint(&mut self) -> Option<(ProgramId, u64)> {
        Some((self.program, 0x100))
    }
    fn object(&self) -> Option<ObjectInfo> {
        Some(self.object)
    }
    fn link_target_owner(&mut self) -> Option<Uid> {
        None
    }
    fn syscall_arg(&self, _idx: usize) -> u64 {
        0
    }
    fn signal(&self) -> Option<SignalInfo> {
        None
    }
    fn mac(&self) -> &MacPolicy {
        &self.mac
    }
    fn program_name(&self, id: ProgramId) -> String {
        self.programs.resolve(id).to_owned()
    }
    fn state_get(&self, _key: u64) -> Option<u64> {
        None
    }
    fn state_set(&mut self, _key: u64, _value: u64) {}
    fn state_unset(&mut self, _key: u64) {}
    fn cache_get(&self, _slot: u8) -> Option<u64> {
        None
    }
    fn cache_put(&mut self, _slot: u8, _value: u64) {}
    fn now(&self) -> u64 {
        0
    }
}

/// Builds a firewall whose throttle rule lives in the hostile chain and
/// has live bucket occupancy, with detailed metrics and sampling on —
/// everything the exporters label with free-form strings is active.
fn hostile_world(env: &mut Env) -> ProcessFirewall {
    let fw = ProcessFirewall::new(OptLevel::EptSpc);
    let lines = [
        format!("pftables -N '{EVIL}'"),
        format!("pftables -o FILE_OPEN -r 0x5 -j '{EVIL}'"),
        format!(
            "pftables -A '{EVIL}' -o FILE_OPEN -j RATELIMIT --rate 1000 --burst 1000 \
             --per subject --exceed drop"
        ),
    ];
    fw.metrics().set_detailed(true);
    fw.install_all(
        lines.iter().map(String::as_str),
        &mut env.mac,
        &mut env.programs,
    )
    .unwrap();
    fw.set_sampling(SamplingMode::Always);
    // One granted walk through the hostile chain: creates a live bucket
    // slot (occupancy rows) and per-chain rule counters.
    let d = fw.evaluate(env, LsmOperation::FileOpen);
    assert_eq!(d.verdict, Verdict::Allow);
    fw
}

#[test]
fn prometheus_export_escapes_hostile_chain_names() {
    let mut env = Env::new();
    let fw = hostile_world(&mut env);
    let text = fw.render_prometheus();

    // The hostile name must appear escaped somewhere (occupancy rows).
    assert!(
        text.contains("pf_throttle_occupancy{chain=\"ev\\\"il\\\\cha\\nin\""),
        "occupancy label must escape quote, backslash, and newline"
    );
    // The raw (unescaped) name must appear nowhere: a raw newline in a
    // label would split a metric line in half.
    assert!(!text.contains(EVIL), "raw hostile chain name leaked");

    // Every line still parses as `name{label="v",…} value`.
    for line in text.lines() {
        let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("unparseable metric line `{line}`");
        });
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "bad value in `{line}`"
        );
        let name = match name_part.split_once('{') {
            Some((n, labels)) => {
                let labels = labels.strip_suffix('}').expect("closing brace");
                assert!(!labels.contains('\n'));
                n
            }
            None => name_part,
        };
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name in `{line}`"
        );
    }
}

#[test]
fn json_export_escapes_hostile_chain_names() {
    let mut env = Env::new();
    let fw = hostile_world(&mut env);
    let json = fw.to_json();

    assert!(json.starts_with('{') && json.ends_with('}'));
    // Single-line invariant: a raw newline anywhere would break JSONL
    // consumers and is the tell-tale of an unescaped label.
    assert!(!json.contains('\n'), "JSON export must stay single-line");
    // The hostile name appears with every character escaped.
    assert!(
        json.contains("ev\\\"il\\\\cha\\nin"),
        "hostile chain name must be JSON-escaped in the export"
    );
    // Occupancy entries carry the rule text (also hostile) escaped.
    assert!(json.contains("\"throttle_occupancy\":[{\"chain\":\"ev\\\"il\\\\cha\\nin\""));

    // Balanced quotes: the document has an even number of unescaped
    // double quotes, so no string literal was left open.
    let mut quotes = 0u64;
    let mut prev_backslashes = 0u32;
    for c in json.chars() {
        if c == '"' && prev_backslashes.is_multiple_of(2) {
            quotes += 1;
        }
        if c == '\\' {
            prev_backslashes += 1;
        } else {
            prev_backslashes = 0;
        }
    }
    assert_eq!(quotes % 2, 0, "unbalanced quotes in JSON export");
}

/// The event plane's own export surface: `DecisionEvent::to_json` emits
/// only numeric, boolean, and fixed-vocabulary string fields, so a
/// hostile ruleset cannot inject content into the JSONL stream at all
/// — rule identity travels as the numeric `rule_key`.
#[test]
fn decision_event_jsonl_contains_no_freeform_strings() {
    let mut env = Env::new();
    let fw = hostile_world(&mut env);
    fw.evaluate(&mut env, LsmOperation::FileOpen);
    let events = fw.events().drain();
    assert!(!events.is_empty());
    for ev in &events {
        let line = ev.to_json();
        assert!(!line.contains('\n'));
        assert!(
            !line.contains("ev\\\"il") && !line.contains(EVIL),
            "rule identity must be numeric in event JSONL: `{line}`"
        );
    }
}
