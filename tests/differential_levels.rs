//! Differential equivalence across the Table 6 optimization ladder.
//!
//! The optimization levels are *transparent*: FULL, EPTSPC, and VCACHE
//! must produce identical verdict sequences for any ruleset and access
//! trace, and the non-caching levels must additionally produce
//! identical LOG streams and STATE dictionaries (VCACHE never caches a
//! walk that touches either, so its side effects match too — but only
//! the non-cached levels are held to byte-identical log records here,
//! since a cached DROP replay refreshes the timestamp).
//!
//! The rulesets interleave ACCEPT / RETURN / LOG / STATE / DROP rules,
//! some bound to entrypoints, which is exactly the shape that used to
//! expose the EPTSPC partition-ordering bug: the generic and
//! entrypoint-bound partitions were walked back-to-back instead of in
//! install order.

use proptest::prelude::*;

use process_firewall::firewall::OptLevel;
use process_firewall::prelude::*;

fn label_pool() -> [&'static str; 5] {
    ["tmp_t", "etc_t", "lib_t", "usr_t", "user_home_t"]
}

fn label_path(lbl: usize) -> &'static str {
    match label_pool()[lbl] {
        "tmp_t" => "/tmp",
        "etc_t" => "/etc/passwd",
        "lib_t" => "/lib/libc-2.15.so",
        "usr_t" => "/usr/share/pyshared/dstat_helpers.py",
        _ => "/home/user",
    }
}

/// One randomized rule line. `kind` selects the target; every target
/// the engine knows how to order-sensitively interleave is represented.
fn rule_line(kind: usize, lbl: usize, bound: bool, pc: u64) -> String {
    let l = label_pool()[lbl];
    let ept = if bound {
        format!("-p /bin/victim -i {:#x} ", 0x100 + pc)
    } else {
        String::new()
    };
    match kind % 7 {
        0 => format!("pftables {ept}-o FILE_OPEN -d {l} -j DROP"),
        1 => format!("pftables {ept}-o FILE_OPEN -d {l} -j ACCEPT"),
        2 => format!("pftables {ept}-o FILE_OPEN -d {l} -j RETURN"),
        3 => format!("pftables {ept}-o FILE_OPEN -d {l} -j LOG --tag t{kind}{lbl}"),
        4 => format!(
            "pftables {ept}-o FILE_OPEN -d {l} -j STATE --set --key {} --value {}",
            40 + lbl as u64,
            pc
        ),
        // Throttle targets are impure (bucket state advances per walk),
        // so VCACHE must classify them uncacheable and re-walk — the
        // differential below proves the verdict stream still agrees,
        // because each level's kernel replays the identical clock.
        5 => format!(
            "pftables {ept}-o FILE_OPEN -d {l} -j RATELIMIT --rate 300 --burst 2 --exceed drop"
        ),
        6 => format!(
            "pftables {ept}-o FILE_OPEN -d {l} -j QUOTA --limit 3 --window 512 --exceed drop"
        ),
        _ => unreachable!(),
    }
}

/// Runs one ruleset + access trace at `level` and returns everything
/// observable: the per-access outcome, the log stream, and the victim's
/// final STATE dictionary (sorted for comparison).
fn run_trace(
    level: OptLevel,
    rules: &[(usize, usize, bool, u64)],
    trace: &[(usize, u64)],
) -> (Vec<bool>, Vec<LogEntry>, Vec<(u64, u64)>) {
    let mut k = standard_world();
    let lines: Vec<String> = rules
        .iter()
        .map(|&(kind, lbl, bound, pc)| rule_line(kind, lbl, bound, pc))
        .collect();
    k.install_rules(lines.iter().map(String::as_str)).unwrap();
    k.firewall.set_level(level).unwrap();
    let pid = k.spawn("user_t", "/bin/victim", Uid(1000), Gid(1000));
    let mut outcomes = Vec::new();
    for &(lbl, pc) in trace {
        let ok = k.with_frame(pid, "/bin/victim", 0x100 + pc, |k| {
            k.open(pid, label_path(lbl), OpenFlags::rdonly())
                .map(|fd| k.close(pid, fd).unwrap())
                .is_ok()
        });
        outcomes.push(ok);
    }
    let logs = k.firewall.take_logs();
    let mut state: Vec<(u64, u64)> = k
        .task(pid)
        .unwrap()
        .pf_state
        .iter()
        .map(|(&k, &v)| (k, v))
        .collect();
    state.sort_unstable();
    (outcomes, logs, state)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The headline differential: FULL ≡ EPTSPC ≡ VCACHE verdicts over
    // interleaved-target rulesets, with repeated accesses so VCACHE
    // actually serves hits mid-trace. FULL and EPTSPC must also agree
    // on every LOG record and STATE entry.
    #[test]
    fn full_eptspc_vcache_verdicts_and_side_effects_agree(
        rules in prop::collection::vec(
            (0usize..7, 0usize..5, any::<bool>(), 0u64..3),
            1..14
        ),
        trace in prop::collection::vec((0usize..5, 0u64..3), 1..10),
    ) {
        // Repeat the trace so the second half runs against a warm
        // verdict cache at VCACHE.
        let doubled: Vec<(usize, u64)> =
            trace.iter().chain(trace.iter()).copied().collect();
        let (v_full, logs_full, state_full) =
            run_trace(OptLevel::Full, &rules, &doubled);
        let (v_ept, logs_ept, state_ept) =
            run_trace(OptLevel::EptSpc, &rules, &doubled);
        let (v_vc, _, state_vc) = run_trace(OptLevel::Vcache, &rules, &doubled);

        prop_assert_eq!(&v_full, &v_ept, "FULL vs EPTSPC verdicts");
        prop_assert_eq!(&v_full, &v_vc, "FULL vs VCACHE verdicts");
        prop_assert_eq!(logs_full, logs_ept, "FULL vs EPTSPC log streams");
        prop_assert_eq!(&state_full, &state_ept, "FULL vs EPTSPC state");
        prop_assert_eq!(&state_full, &state_vc, "FULL vs VCACHE state");
    }
}

// ---------------------------------------------------------------------
// Origin-mutating traces: taint mid-trace, fork inheritance, reload
// churn. A stale cached verdict would break the parity below, because
// an origin transition flips what the `--origin` rules match.
// ---------------------------------------------------------------------

/// A rule line that may carry an `--origin` selector: `origin % 3`
/// picks none / `tainted` / `external`.
fn origin_rule_line(kind: usize, lbl: usize, origin: usize) -> String {
    let l = label_pool()[lbl];
    let og = match origin % 3 {
        1 => "--origin tainted ",
        2 => "--origin external ",
        _ => "",
    };
    match kind % 4 {
        0 => format!("pftables -s sshd_t -o FILE_OPEN -d {l} {og}-j DROP"),
        1 => format!("pftables -o FILE_OPEN -d {l} {og}-j ACCEPT"),
        2 => format!("pftables -o FILE_OPEN -d {l} {og}-j LOG --tag og{kind}{lbl}"),
        3 => format!("pftables -o FILE_OPEN -d {l} {og}-j RETURN"),
        _ => unreachable!(),
    }
}

/// Replays an origin-mutating trace at `level`. Steps `0..5` open the
/// corresponding label; `5` taints the victim (it reads a file an
/// adversary wrote); `6` forks (the child, inheriting the origin,
/// continues the trace); `7` hot-reloads the same ruleset.
fn run_origin_trace(
    level: OptLevel,
    rules: &[(usize, usize, usize)],
    trace: &[usize],
) -> (Vec<bool>, u64) {
    let mut k = standard_world();
    let lines: Vec<String> = rules
        .iter()
        .map(|&(kind, lbl, origin)| origin_rule_line(kind, lbl, origin))
        .collect();
    k.install_rules(lines.iter().map(String::as_str)).unwrap();
    k.firewall.set_level(level).unwrap();

    // Adversary bait: content written by a tainted subject.
    let adversary = k.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
    let fd = k
        .open(adversary, "/tmp/evil", OpenFlags::creat(0o644))
        .unwrap();
    k.write(adversary, fd, b"payload").unwrap();
    k.close(adversary, fd).unwrap();

    let mut victim = k.spawn("sshd_t", "/bin/victim", Uid::ROOT, Gid::ROOT);
    let mut outcomes = Vec::new();
    for &step in trace {
        let ok = match step {
            0..=4 => k
                .open(victim, label_path(step), OpenFlags::rdonly())
                .map(|fd| k.close(victim, fd).unwrap())
                .is_ok(),
            5 => k
                .open(victim, "/tmp/evil", OpenFlags::rdonly())
                .and_then(|fd| {
                    k.read(victim, fd)?;
                    k.close(victim, fd)
                })
                .is_ok(),
            6 => {
                victim = k.fork(victim).unwrap();
                true
            }
            7 => {
                let fw = k.firewall.clone();
                fw.reload(
                    lines.iter().map(String::as_str),
                    &mut k.mac,
                    &mut k.programs,
                )
                .unwrap();
                true
            }
            _ => unreachable!(),
        };
        outcomes.push(ok);
    }
    (outcomes, k.task_origin(victim).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // FULL ≡ EPTSPC ≡ VCACHE while the subject's origin mutates
    // mid-trace (taints, forks, reload churn). The trace is doubled so
    // the second half runs against a cache warmed *before* any
    // second-round transitions — precisely where a stale hit would
    // surface as a verdict divergence.
    #[test]
    fn origin_mutating_traces_agree_across_levels(
        rules in prop::collection::vec(
            (0usize..4, 0usize..5, 0usize..3),
            1..10
        ),
        trace in prop::collection::vec(0usize..8, 1..12),
    ) {
        let doubled: Vec<usize> =
            trace.iter().chain(trace.iter()).copied().collect();
        let (v_full, o_full) = run_origin_trace(OptLevel::Full, &rules, &doubled);
        let (v_ept, o_ept) = run_origin_trace(OptLevel::EptSpc, &rules, &doubled);
        let (v_vc, o_vc) = run_origin_trace(OptLevel::Vcache, &rules, &doubled);

        prop_assert_eq!(&v_full, &v_ept, "FULL vs EPTSPC verdicts");
        prop_assert_eq!(&v_full, &v_vc, "FULL vs VCACHE verdicts");
        prop_assert_eq!(o_full, o_ept, "final origin FULL vs EPTSPC");
        prop_assert_eq!(o_full, o_vc, "final origin FULL vs VCACHE");
    }
}

#[test]
fn origin_transition_invalidates_warm_verdict_cache() {
    // The stale-cache bug this PR fixes: warm the verdict cache while
    // the subject is trusted, taint it, and re-issue the same access.
    // A stale hit would replay the cached Allow; the origin transition
    // must miss (new origin keys the entry) and the generation bump
    // must flush the stale entries — observable in the counter.
    let mut k = standard_world();
    k.install_rules(["pftables -s sshd_t --origin tainted -o FILE_OPEN -d etc_t -j DROP"])
        .unwrap();
    k.firewall.set_level(OptLevel::Vcache).unwrap();

    let adversary = k.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
    let fd = k
        .open(adversary, "/tmp/evil", OpenFlags::creat(0o644))
        .unwrap();
    k.write(adversary, fd, b"payload").unwrap();
    k.close(adversary, fd).unwrap();

    let victim = k.spawn("sshd_t", "/bin/victim", Uid::ROOT, Gid::ROOT);
    for _ in 0..3 {
        let fd = k.open(victim, "/etc/passwd", OpenFlags::rdonly()).unwrap();
        k.close(victim, fd).unwrap();
    }
    assert!(k.firewall.metrics().vcache_hits() > 0, "cache is warm");

    // Taint: the victim consumes adversary-written content.
    let fd = k.open(victim, "/tmp/evil", OpenFlags::rdonly()).unwrap();
    k.read(victim, fd).unwrap();
    k.close(victim, fd).unwrap();

    // The very same access must now flip to Deny — no stale replay.
    let e = k
        .open(victim, "/etc/passwd", OpenFlags::rdonly())
        .unwrap_err();
    assert!(e.is_firewall_denial(), "tainted open must be denied");
    let m = k.firewall.metrics();
    assert!(m.origin_transitions() > 0);
    assert!(m.origin_widened() > 0, "sshd_t crossed the threshold");
    assert!(
        m.origin_vcache_invalidations() > 0,
        "the widening flushed the warm cache"
    );
}

// ---------------------------------------------------------------------
// Directed VCACHE behaviour through the whole kernel stack.
// ---------------------------------------------------------------------

#[test]
fn vcache_serves_hits_for_repeated_denials() {
    let mut k = standard_world();
    k.install_rules(["pftables -o FILE_OPEN -d etc_t -j DROP"])
        .unwrap();
    k.firewall.set_level(OptLevel::Vcache).unwrap();
    let pid = k.spawn("user_t", "/bin/victim", Uid(1000), Gid(1000));
    for _ in 0..5 {
        let e = k.open(pid, "/etc/passwd", OpenFlags::rdonly()).unwrap_err();
        assert!(e.is_firewall_denial());
    }
    // Each open fires several hooks (one per resolved component plus
    // the FILE_OPEN itself); the first open populates one entry per
    // hook and every later hook is a pure cache hit.
    let m = k.firewall.metrics();
    let per_open = m.invocations() / 5;
    assert!(per_open >= 2, "open should fire several hooks");
    assert_eq!(
        m.vcache_misses(),
        per_open,
        "first open populates the cache"
    );
    assert_eq!(m.vcache_hits(), 4 * per_open, "repeats are served from it");
    assert_eq!(m.vcache_uncacheable(), 0);
    assert_eq!(m.drops(), 5, "hits still count as drops");
    // Every cached denial is still audited.
    assert_eq!(k.firewall.take_logs().len(), 5);
}

#[test]
fn reload_invalidates_cached_verdicts_mid_task() {
    let mut k = standard_world();
    k.install_rules(["pftables -o FILE_OPEN -d etc_t -j DROP"])
        .unwrap();
    k.firewall.set_level(OptLevel::Vcache).unwrap();
    let pid = k.spawn("user_t", "/bin/victim", Uid(1000), Gid(1000));
    for _ in 0..2 {
        assert!(k
            .open(pid, "/etc/passwd", OpenFlags::rdonly())
            .unwrap_err()
            .is_firewall_denial());
    }
    assert!(k.firewall.metrics().vcache_hits() > 0);

    // Hot-reload to a ruleset that permits the open; the cached Deny
    // must not survive the generation bump.
    let fw = k.firewall.clone();
    fw.reload(
        ["pftables -o FILE_OPEN -d tmp_t -j DROP"],
        &mut k.mac,
        &mut k.programs,
    )
    .unwrap();
    let fd = k.open(pid, "/etc/passwd", OpenFlags::rdonly()).unwrap();
    k.close(pid, fd).unwrap();
}
