//! End-to-end: the complete Table 5 rule base installed at once must
//! block every exploit while leaving every benign workload intact —
//! the paper's system-wide deployment story.

use process_firewall::attacks::ruleset::{full_rule_base, table5_rules, FULL_RULE_COUNT};
use process_firewall::attacks::run_all;
use process_firewall::attacks::webserver::Apache;
use process_firewall::attacks::workloads::{apache_build, boot, setup_build_tree, web_serve};
use process_firewall::firewall::OptLevel;
use process_firewall::os::interp::{include_file, PHP};
use process_firewall::os::loader::{load_library, LinkerConfig};
use process_firewall::prelude::*;

fn fully_armed_world(level: OptLevel) -> Kernel {
    let mut k = standard_world();
    let rules = full_rule_base(FULL_RULE_COUNT);
    let refs: Vec<&str> = rules.iter().map(String::as_str).collect();
    k.install_rules(refs).unwrap();
    k.firewall.set_level(level).unwrap();
    k
}

#[test]
fn all_exploits_match_table4_under_individual_rules() {
    for o in run_all() {
        assert!(o.as_expected(), "{}: {}", o.scenario.id, o.detail);
    }
}

#[test]
fn whole_table5_base_coexists_without_interference() {
    // Install ALL rules, then drive several distinct victims in the
    // same world: each rule must fire for its own attack only.
    let mut k = standard_world();
    k.install_rules(table5_rules()).unwrap();

    // Library hijack blocked, fallback works (R1).
    let adversary = k.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
    k.mkdir(adversary, "/tmp/evil", 0o777).unwrap();
    let fd = k
        .open(adversary, "/tmp/evil/libc-2.15.so", OpenFlags::creat(0o755))
        .unwrap();
    k.close(adversary, fd).unwrap();
    let apache = k.spawn("httpd_t", "/usr/bin/apache2", Uid::ROOT, Gid::ROOT);
    let lib = load_library(
        &mut k,
        apache,
        "libc-2.15.so",
        &LinkerConfig {
            rpath: vec!["/tmp/evil".into()],
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(lib.path, "/lib/libc-2.15.so");

    // PHP LFI blocked, component include allowed (R4).
    let php = k.spawn("httpd_t", "/usr/bin/php5", Uid(33), Gid(33));
    assert!(include_file(&mut k, php, PHP, "/x.php", 1, "/etc/passwd").is_err());
    assert!(include_file(
        &mut k,
        php,
        PHP,
        "/x.php",
        1,
        "/var/www/components/gcalendar.php"
    )
    .is_ok());

    // Signal race blocked (R9-R12) while ordinary signals flow.
    let sshd = k.spawn("sshd_t", "/usr/sbin/sshd", Uid::ROOT, Gid::ROOT);
    let trigger = k.spawn("init_t", "/bin/sh", Uid::ROOT, Gid::ROOT);
    k.sigaction(sshd, SignalNum::SIGALRM, true).unwrap();
    assert!(k.kill(trigger, sshd, SignalNum::SIGALRM).unwrap());
    assert!(!k.kill(trigger, sshd, SignalNum::SIGALRM).unwrap());
    k.sigreturn(sshd).unwrap();
    assert!(k.kill(trigger, sshd, SignalNum::SIGALRM).unwrap());

    // Everyday file traffic untouched by the whole base.
    let user = k.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
    let fd = k.open(user, "/etc/passwd", OpenFlags::rdonly()).unwrap();
    assert!(k.read(user, fd).is_ok());
    let w = k.open(user, "/tmp/notes", OpenFlags::creat(0o644)).unwrap();
    assert!(k.write(user, w, b"hello").is_ok());
}

#[test]
fn macro_workloads_survive_the_full_1218_rule_base() {
    for level in [OptLevel::Full, OptLevel::EptSpc] {
        let mut k = fully_armed_world(level);
        setup_build_tree(&mut k);
        apache_build(&mut k).unwrap();
        boot(&mut k).unwrap();
        web_serve(&mut k, 10, 3).unwrap();
    }
}

#[test]
fn optimization_levels_agree_on_the_webserver() {
    // Verdict equivalence across the optimization ladder on a real
    // kernel (not just the engine mock): the same request mix must
    // produce byte-identical outcomes at every level.
    let mut outcomes: Vec<Vec<bool>> = Vec::new();
    for level in [
        OptLevel::Full,
        OptLevel::ConCache,
        OptLevel::LazyCon,
        OptLevel::EptSpc,
    ] {
        let mut k = fully_armed_world(level);
        k.install_rules([process_firewall::attacks::webserver::APACHE_DOCROOT_RULE])
            .unwrap();
        let apache = Apache::start(&mut k);
        k.put_symlink("/var/www/exports", "/etc", Uid(1000))
            .unwrap();
        let mut results = Vec::new();
        for uri in ["/index.html", "/exports/passwd", "/index.php", "/missing"] {
            results.push(apache.handle_request(&mut k, uri).is_ok());
        }
        outcomes.push(results);
    }
    for later in &outcomes[1..] {
        assert_eq!(&outcomes[0], later);
    }
}

#[test]
fn firewall_drops_are_attributed_and_logged() {
    let mut k = standard_world();
    k.install_rules(table5_rules()).unwrap();
    let php = k.spawn("httpd_t", "/usr/bin/php5", Uid(33), Gid(33));
    let err = include_file(&mut k, php, PHP, "/x.php", 1, "/etc/passwd").unwrap_err();
    match err {
        PfError::FirewallDenied { chain, .. } => assert_eq!(chain, "input"),
        other => panic!("expected firewall denial, got {other}"),
    }
    let denials: Vec<_> = k
        .firewall
        .take_logs()
        .into_iter()
        .filter(|l| l.verdict == "DENY")
        .collect();
    assert_eq!(denials.len(), 1);
    assert_eq!(denials[0].ept_prog, "/usr/bin/php5");
    assert_eq!(denials[0].ept_pc, 0x27ad2c);
    assert_eq!(denials[0].object, "etc_t");
}
