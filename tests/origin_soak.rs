//! Eight-thread origin-churn soak with racing reloads.
//!
//! Eight evaluator threads share one VCACHE-level firewall and one
//! thread-safe `MacPolicy` while a ninth thread hammers hot reloads.
//! Each evaluator mutates its subject's origin mid-soak (external, then
//! tainted — the latter also widening the shared adversary model via
//! `taint_subject`), so verdict-cache entries keep going stale under
//! every combination of taint transition and reload churn.
//!
//! Two properties are asserted exactly:
//!
//! * **zero stale verdicts** — every decision matches the verdict the
//!   subject's *current* origin demands, computed thread-locally; a
//!   replay of a pre-taint Allow would trip the assertion immediately;
//! * **exact invalidation accounting** — each thread predicts, from
//!   observables only (`vcache_len` before the call, the decision's
//!   ruleset and adversary generations), precisely when the engine must
//!   count an origin-driven cache invalidation. The per-thread
//!   predictions summed must equal `origin_vcache_invalidations()` to
//!   the unit — no double counts, no missed flushes, no counts for
//!   reload-cleared (already empty) caches.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use process_firewall::firewall::{EvalEnv, ObjectInfo, OptLevel, ProcessFirewall, TaskSession};
use process_firewall::mac::{ubuntu_mini, MacPolicy, TAINT_THRESHOLD};
use process_firewall::types::{
    DeviceId, Gid, InodeNum, Interner, LsmOperation, Mode, Pid, ProgramId, ResourceId, SecId, Uid,
    Verdict,
};

const WORKERS: usize = 8;
const ITERS: usize = 600;
const RELOADS: usize = 40;

/// System-high subjects of `ubuntu_mini`, one per worker (workers past
/// the sixth share a label, so some taints race on the same subject).
const SYSHIGH: [&str; 6] = [
    "kernel_t",
    "init_t",
    "sshd_t",
    "httpd_t",
    "system_dbusd_t",
    "staff_t",
];

fn rules() -> [&'static str; 2] {
    [
        "pftables -o FILE_OPEN -d etc_t --origin tainted -j DROP",
        "pftables -o FILE_OPEN -d tmp_t -j DROP",
    ]
}

/// An evaluator environment sharing the sweep's `MacPolicy`; the
/// subject's origin is plain thread-local data the test mutates.
struct SoakEnv {
    mac: Arc<MacPolicy>,
    programs: Interner,
    subject: SecId,
    program: ProgramId,
    origin: u64,
    object: ObjectInfo,
}

impl SoakEnv {
    fn new(mac: Arc<MacPolicy>, programs: Interner, subject: &str) -> Self {
        let mut programs = programs;
        let subject = mac.lookup_label(subject).unwrap();
        let program = programs.intern("/usr/sbin/daemon");
        let sid = mac.lookup_label("etc_t").unwrap();
        SoakEnv {
            mac,
            programs,
            subject,
            program,
            origin: 0,
            object: ObjectInfo {
                sid,
                resource: ResourceId::File {
                    dev: DeviceId(0),
                    ino: InodeNum(77),
                },
                owner: Uid(0),
                group: Gid(0),
                mode: Mode::FILE_DEFAULT,
            },
        }
    }
}

impl EvalEnv for SoakEnv {
    fn subject_sid(&self) -> SecId {
        self.subject
    }
    fn program(&self) -> ProgramId {
        self.program
    }
    fn pid(&self) -> Pid {
        Pid(1)
    }
    fn unwind_entrypoint(&mut self) -> Option<(ProgramId, u64)> {
        Some((self.program, 0x100))
    }
    fn object(&self) -> Option<ObjectInfo> {
        Some(self.object)
    }
    fn link_target_owner(&mut self) -> Option<Uid> {
        None
    }
    fn syscall_arg(&self, _idx: usize) -> u64 {
        0
    }
    fn signal(&self) -> Option<process_firewall::firewall::SignalInfo> {
        None
    }
    fn subject_origin(&self) -> Option<u64> {
        Some(self.origin)
    }
    fn mac(&self) -> &MacPolicy {
        &self.mac
    }
    fn program_name(&self, id: ProgramId) -> String {
        self.programs.resolve(id).to_owned()
    }
    fn state_get(&self, _key: u64) -> Option<u64> {
        None
    }
    fn state_set(&mut self, _key: u64, _value: u64) {}
    fn state_unset(&mut self, _key: u64) {}
    fn cache_get(&self, _slot: u8) -> Option<u64> {
        None
    }
    fn cache_put(&mut self, _slot: u8, _value: u64) {}
    fn now(&self) -> u64 {
        0
    }
}

#[test]
fn eight_thread_origin_churn_with_racing_reloads() {
    // The shared policy the evaluators read (and taint); the firewall's
    // rules are parsed against a private twin — `ubuntu_mini` label ids
    // are deterministic, so SecIds line up across instances.
    let shared_mac = Arc::new(ubuntu_mini());
    let mut parse_mac = ubuntu_mini();
    let mut programs = Interner::new();
    let pf = Arc::new(ProcessFirewall::new(OptLevel::Vcache));
    pf.install_all(rules(), &mut parse_mac, &mut programs)
        .unwrap();

    let barrier = Arc::new(Barrier::new(WORKERS + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let widenings = Arc::new(AtomicU64::new(0));

    // The reloader: replaces the (identical) rule base over and over,
    // forcing evaluator sessions to re-pin with cleared caches at
    // unpredictable points.
    let reloader = {
        let pf = Arc::clone(&pf);
        let barrier = Arc::clone(&barrier);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut mac = ubuntu_mini();
            let mut programs = Interner::new();
            barrier.wait();
            for _ in 0..RELOADS {
                pf.reload(rules(), &mut mac, &mut programs).unwrap();
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::yield_now();
            }
        })
    };

    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let pf = Arc::clone(&pf);
            let mac = Arc::clone(&shared_mac);
            let barrier = Arc::clone(&barrier);
            let widenings = Arc::clone(&widenings);
            let programs = programs.clone();
            std::thread::spawn(move || -> u64 {
                let mut env = SoakEnv::new(mac, programs, SYSHIGH[w % SYSHIGH.len()]);
                let mut session = TaskSession::new();
                let mut predicted_invalidations = 0u64;
                let mut prev_adv_gen: Option<u64> = None;
                barrier.wait();
                for i in 0..ITERS {
                    // The churn schedule: one below-threshold raise, one
                    // threshold crossing, staggered per worker so taints
                    // land while other workers' caches are warm.
                    if i == 150 + 7 * w {
                        env.origin = 1;
                    }
                    if i == 350 + 7 * w {
                        env.origin = TAINT_THRESHOLD;
                        if env.mac.taint_subject(env.subject) {
                            widenings.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let len_before = session.vcache_len();
                    let gen_before = session.generation();
                    let d = session.evaluate(&pf, &mut env, LsmOperation::FileOpen);

                    // Zero stale verdicts: the decision must reflect the
                    // subject's current origin, cached or not.
                    let want_deny = env.origin >= TAINT_THRESHOLD;
                    assert_eq!(
                        d.verdict == Verdict::Deny,
                        want_deny,
                        "stale verdict: worker {w} iteration {i} origin {}",
                        env.origin
                    );

                    // Exact accounting: the engine counts an origin
                    // invalidation iff the cache held entries, the call
                    // did not re-pin (a re-pin clears the cache first),
                    // and the adversary generation moved since the stamp
                    // (= the previous decision's generation).
                    let repinned = gen_before != Some(d.generation);
                    if len_before > 0
                        && !repinned
                        && prev_adv_gen.is_some_and(|g| g != d.adv_generation)
                    {
                        predicted_invalidations += 1;
                    }
                    prev_adv_gen = Some(d.adv_generation);
                }
                predicted_invalidations
            })
        })
        .collect();

    let predicted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    stop.store(true, Ordering::Relaxed);
    reloader.join().unwrap();

    // Every system-high label was widened exactly once, no matter how
    // many workers raced on it.
    assert_eq!(
        widenings.load(Ordering::Relaxed),
        SYSHIGH.len() as u64,
        "taint_subject must report each label's first taint exactly once"
    );
    assert!(shared_mac.adversary_generation() >= SYSHIGH.len() as u64);

    let m = pf.metrics();
    assert_eq!(
        m.origin_vcache_invalidations(),
        predicted,
        "origin-driven cache invalidations must match the per-thread \
         predictions to the unit"
    );
    assert!(
        m.origin_vcache_invalidations() > 0,
        "the soak never actually flushed a warm cache"
    );
    assert!(m.vcache_hits() > 0, "the soak never served cached verdicts");
    assert_eq!(
        m.drops() + m.accepts() + m.default_allows(),
        m.invocations(),
        "counter conservation broke under origin churn"
    );
}
