//! Property-based tests over the core invariants.

use proptest::prelude::*;

use process_firewall::firewall::{OptLevel, ProcessFirewall};
use process_firewall::mac::{MacPolicy, PermSet};
use process_firewall::prelude::*;
use process_firewall::types::Interner;
use process_firewall::vfs::{normalize_lexical, resolve, ResolveOpts};

// ---------------------------------------------------------------------
// Path utilities.
// ---------------------------------------------------------------------

fn component_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        3 => "[a-z]{1,6}",
        1 => Just("..".to_owned()),
        1 => Just(".".to_owned()),
    ]
}

fn path_strategy() -> impl Strategy<Value = String> {
    (
        any::<bool>(),
        prop::collection::vec(component_strategy(), 0..8),
    )
        .prop_map(|(abs, comps)| {
            let body = comps.join("/");
            if abs {
                format!("/{body}")
            } else if body.is_empty() {
                ".".to_owned()
            } else {
                body
            }
        })
}

proptest! {
    #[test]
    fn normalization_is_idempotent(path in path_strategy()) {
        let once = normalize_lexical(&path);
        prop_assert_eq!(normalize_lexical(&once), once);
    }

    #[test]
    fn normalized_absolute_paths_never_contain_dotdot(path in path_strategy()) {
        prop_assume!(path.starts_with('/'));
        let n = normalize_lexical(&path);
        prop_assert!(n.split('/').all(|c| c != ".." && c != "."), "{}", n);
    }
}

// ---------------------------------------------------------------------
// VFS resolution.
// ---------------------------------------------------------------------

/// Builds a random directory tree and returns the file paths created.
fn build_tree(k: &mut Kernel, spec: &[(String, bool)]) -> Vec<String> {
    let mut files = Vec::new();
    for (i, (name, is_dir)) in spec.iter().enumerate() {
        let parent = if i % 3 == 0 || files.is_empty() {
            "/tmp".to_owned()
        } else {
            format!("/tmp/sub{}", i % 4)
        };
        k.mk_dirs(&parent).unwrap();
        let path = format!("{parent}/{name}{i}");
        if *is_dir {
            k.mk_dirs(&path).unwrap();
        } else {
            k.put_file(&path, b"x", 0o644, Uid(1000), Gid(1000))
                .unwrap();
            files.push(path);
        }
    }
    files
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn resolution_reaches_exactly_what_was_created(
        spec in prop::collection::vec(("[a-z]{1,5}", any::<bool>()), 1..12)
    ) {
        let mut k = standard_world();
        let files = build_tree(&mut k, &spec);
        for path in files {
            let r = resolve(
                &k.vfs,
                k.vfs.root(),
                &path,
                &ResolveOpts::default(),
                &mut |_, _| Ok(()),
            ).unwrap();
            let obj = r.target.expect("created file must resolve");
            prop_assert!(k.vfs.inode(obj).unwrap().kind.is_file());
            // The hook sees one DirSearch per component.
            let mut searches = 0;
            resolve(&k.vfs, k.vfs.root(), &path, &ResolveOpts::default(), &mut |_, ev| {
                if matches!(ev, process_firewall::vfs::ResolveEvent::DirSearch { .. }) {
                    searches += 1;
                }
                Ok(())
            }).unwrap();
            prop_assert_eq!(searches as usize, path.split('/').filter(|c| !c.is_empty()).count());
        }
    }

    #[test]
    fn symlink_chains_resolve_like_their_targets_or_eloop(
        depth in 1usize..50
    ) {
        let mut k = standard_world();
        k.put_file("/tmp/base", b"x", 0o644, Uid(1000), Gid(1000)).unwrap();
        let pid = k.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
        for i in 0..depth {
            let target = if i == 0 { "/tmp/base".to_owned() } else { format!("/tmp/l{}", i - 1) };
            k.symlink(pid, &target, &format!("/tmp/l{i}")).unwrap();
        }
        let top = format!("/tmp/l{}", depth - 1);
        let result = k.stat(pid, &top);
        if depth <= 40 {
            let direct = k.stat(pid, "/tmp/base").unwrap();
            prop_assert!(result.unwrap().same_object(&direct));
        } else {
            prop_assert!(matches!(result, Err(PfError::SymlinkLoop(_))));
        }
    }

    #[test]
    fn unlink_create_preserves_live_inode_uniqueness(
        ops in prop::collection::vec(any::<bool>(), 1..40)
    ) {
        // Whatever interleaving of create/unlink happens, two live files
        // never share (dev, ino).
        let mut k = standard_world();
        let pid = k.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
        let mut live: Vec<(String, ObjRef)> = Vec::new();
        for (i, create) in ops.into_iter().enumerate() {
            if create || live.is_empty() {
                let path = format!("/tmp/f{i}");
                let fd = k.open(pid, &path, OpenFlags::creat(0o644)).unwrap();
                k.close(pid, fd).unwrap();
                live.push((path.clone(), k.lookup(&path).unwrap()));
            } else {
                let (path, _) = live.remove(i % live.len());
                k.unlink(pid, &path).unwrap();
            }
            let mut ids: Vec<_> = live.iter().map(|(_, o)| *o).collect();
            ids.sort();
            ids.dedup();
            prop_assert_eq!(ids.len(), live.len(), "live inode collision");
        }
    }
}

// ---------------------------------------------------------------------
// MAC adversary accessibility.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn growing_the_tcb_never_increases_adversary_access(
        n_subjects in 1usize..8,
        n_objects in 1usize..8,
        grants in prop::collection::vec((0usize..8, 0usize..8), 0..24),
        promote in prop::collection::vec(0usize..8, 0..8)
    ) {
        let mut p = MacPolicy::new();
        let subjects: Vec<_> = (0..n_subjects).map(|i| p.declare_subject(&format!("s{i}_t"))).collect();
        let objects: Vec<_> = (0..n_objects).map(|i| p.declare_object(&format!("o{i}_t"))).collect();
        for (s, o) in grants {
            p.allow(subjects[s % n_subjects], objects[o % n_objects], PermSet::RW);
        }
        let before: Vec<bool> = objects.iter().map(|&o| p.adversary_writable(o)).collect();
        for s in promote {
            p.add_to_syshigh(subjects[s % n_subjects]);
        }
        let after: Vec<bool> = objects.iter().map(|&o| p.adversary_writable(o)).collect();
        for (b, a) in before.iter().zip(&after) {
            prop_assert!(!*a || *b, "promotion to TCB created adversary access");
        }
    }
}

// ---------------------------------------------------------------------
// Engine: optimization-level equivalence and STATE semantics.
// ---------------------------------------------------------------------

fn label_pool() -> [&'static str; 5] {
    ["tmp_t", "etc_t", "lib_t", "usr_t", "user_home_t"]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimization_levels_never_change_verdicts(
        rule_specs in prop::collection::vec((0usize..5, any::<bool>(), 0u64..4), 1..12),
        access in (0usize..5, 0u64..4)
    ) {
        // Random deny rules over random label/entrypoint combinations;
        // a random access must get the same verdict at every level.
        let labels = label_pool();
        let mut verdicts = Vec::new();
        for level in [
            OptLevel::Full,
            OptLevel::ConCache,
            OptLevel::LazyCon,
            OptLevel::EptSpc,
            OptLevel::Vcache,
            OptLevel::RulesetC,
        ] {
            let mut k = standard_world();
            for &(lbl, with_ept, pc) in &rule_specs {
                let rule = if with_ept {
                    format!(
                        "pftables -p /bin/victim -i {:#x} -o FILE_OPEN -d {} -j DROP",
                        0x100 + pc, labels[lbl]
                    )
                } else {
                    format!("pftables -o FILE_OPEN -d {} -j DROP", labels[lbl])
                };
                k.install_rules([rule.as_str()]).unwrap();
            }
            k.firewall.set_level(level).unwrap();
            let pid = k.spawn("user_t", "/bin/victim", Uid(1000), Gid(1000));
            let (target_lbl, pc) = access;
            let path = match labels[target_lbl] {
                "tmp_t" => "/tmp",
                "etc_t" => "/etc/passwd",
                "lib_t" => "/lib/libc-2.15.so",
                "usr_t" => "/usr/share/pyshared/dstat_helpers.py",
                _ => "/home/user",
            };
            let outcome = k.with_frame(pid, "/bin/victim", 0x100 + pc, |k| {
                k.open(pid, path, OpenFlags::rdonly()).map(|fd| {
                    k.close(pid, fd).unwrap();
                })
            });
            verdicts.push(outcome.is_ok());
        }
        prop_assert!(verdicts.windows(2).all(|w| w[0] == w[1]), "{:?}", verdicts);
    }

    #[test]
    fn state_dictionary_set_then_match_round_trips(
        key in 1u64..1_000_000,
        value in 0u64..1_000_000
    ) {
        let mut k = standard_world();
        let set_rule = format!(
            "pftables -o SOCKET_BIND -j STATE --set --key {key} --value {value}"
        );
        let drop_rule = format!(
            "pftables -o FILE_OPEN -m STATE --key {key} --cmp {value} -j DROP"
        );
        k.install_rules([set_rule.as_str(), drop_rule.as_str()]).unwrap();
        let pid = k.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
        // Before the bind records state, the open is unaffected.
        let fd = k.open(pid, "/etc/passwd", OpenFlags::rdonly()).unwrap();
        k.close(pid, fd).unwrap();
        // After bind sets the key, the matching open is dropped.
        k.bind_unix(pid, "/tmp/s.sock", 0o666).unwrap();
        prop_assert_eq!(k.task(pid).unwrap().pf_state.get(&key), Some(&value));
        let e = k.open(pid, "/etc/passwd", OpenFlags::rdonly()).unwrap_err();
        prop_assert!(e.is_firewall_denial());
    }
}

// ---------------------------------------------------------------------
// Rule language: parse → display text → reparse stability.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn installed_rule_text_reinstalls_identically(
        lbl in 0usize..5,
        negate in any::<bool>(),
        pc in prop::option::of(1u64..0xffff),
        op in prop::sample::select(vec!["FILE_OPEN", "FILE_WRITE", "LINK_READ", "SOCKET_BIND"]),
    ) {
        let labels = label_pool();
        let set = if negate {
            format!("~{{{}}}", labels[lbl])
        } else {
            labels[lbl].to_owned()
        };
        let ept = pc.map(|p| format!("-p /bin/x -i {p:#x} ")).unwrap_or_default();
        let text = format!("pftables {ept}-o {op} -d {set} -j DROP");

        let mut mac = process_firewall::mac::ubuntu_mini();
        let mut progs = Interner::new();
        let a = process_firewall::firewall::lang::parse_rule(&text, &mut mac, &mut progs).unwrap();
        let b = process_firewall::firewall::lang::parse_rule(&a.rule.text, &mut mac, &mut progs).unwrap();
        prop_assert_eq!(a, b);

        // And it actually installs.
        let pf = ProcessFirewall::new(OptLevel::EptSpc);
        pf.install(&text, &mut mac, &mut progs).unwrap();
        prop_assert_eq!(pf.rule_count(), 1);
    }
}

// ---------------------------------------------------------------------
// Snapshot hot reload: linearizability and atomicity.
// ---------------------------------------------------------------------

mod reload_env {
    use process_firewall::firewall::{EvalEnv, ObjectInfo, SignalInfo};
    use process_firewall::mac::{ubuntu_mini, MacPolicy};
    use process_firewall::types::{
        DeviceId, Gid, InodeNum, Interner, Mode, Pid, ProgramId, ResourceId, SecId, Uid,
    };

    /// Minimal evaluation environment over one labelled file object.
    pub struct Env {
        pub mac: MacPolicy,
        pub programs: Interner,
        subject: SecId,
        program: ProgramId,
        object: ObjectInfo,
    }

    impl Env {
        pub fn new(label: &str) -> Self {
            let mac = ubuntu_mini();
            let mut programs = Interner::new();
            let subject = mac.lookup_label("httpd_t").unwrap();
            let program = programs.intern("/usr/bin/apache2");
            let sid = mac.lookup_label(label).unwrap();
            Env {
                mac,
                programs,
                subject,
                program,
                object: ObjectInfo {
                    sid,
                    resource: ResourceId::File {
                        dev: DeviceId(0),
                        ino: InodeNum(5),
                    },
                    owner: Uid(0),
                    group: Gid(0),
                    mode: Mode::FILE_DEFAULT,
                },
            }
        }
    }

    impl EvalEnv for Env {
        fn subject_sid(&self) -> SecId {
            self.subject
        }
        fn program(&self) -> ProgramId {
            self.program
        }
        fn pid(&self) -> Pid {
            Pid(1)
        }
        fn unwind_entrypoint(&mut self) -> Option<(ProgramId, u64)> {
            Some((self.program, 0x100))
        }
        fn object(&self) -> Option<ObjectInfo> {
            Some(self.object)
        }
        fn link_target_owner(&mut self) -> Option<Uid> {
            None
        }
        fn syscall_arg(&self, _idx: usize) -> u64 {
            0
        }
        fn signal(&self) -> Option<SignalInfo> {
            None
        }
        fn mac(&self) -> &MacPolicy {
            &self.mac
        }
        fn program_name(&self, id: ProgramId) -> String {
            self.programs.resolve(id).to_owned()
        }
        fn state_get(&self, _key: u64) -> Option<u64> {
            None
        }
        fn state_set(&mut self, _key: u64, _value: u64) {}
        fn state_unset(&mut self, _key: u64) {}
        fn cache_get(&self, _slot: u8) -> Option<u64> {
            None
        }
        fn cache_put(&mut self, _slot: u8, _value: u64) {}
        fn now(&self) -> u64 {
            0
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // A reload mid-trace is linearizable: an invocation still pinned
    // to the pre-reload snapshot gets exactly the old ruleset's
    // verdict, a fresh session gets exactly the new one, and both
    // verdicts carry the generation that proves which ruleset decided
    // them. No verdict is ever unreachable under both rulesets.
    #[test]
    fn mid_trace_reload_yields_only_attributable_verdicts(
        old_set in prop::collection::vec(0usize..5, 0..5),
        new_set in prop::collection::vec(0usize..5, 0..5),
        access in 0usize..5,
    ) {
        use process_firewall::firewall::TaskSession;
        use process_firewall::types::LsmOperation;

        let labels = label_pool();
        let lines = |set: &[usize]| -> Vec<String> {
            set.iter()
                .map(|&l| format!("pftables -o FILE_OPEN -d {} -j DROP", labels[l]))
                .collect()
        };
        let mut env = reload_env::Env::new(labels[access]);
        let fw = ProcessFirewall::new(OptLevel::Full);
        let old_lines = lines(&old_set);
        fw.install_all(
            old_lines.iter().map(String::as_str),
            &mut env.mac,
            &mut env.programs,
        )
        .unwrap();
        let expect_old = old_set.contains(&access);
        let expect_new = new_set.contains(&access);

        let mut pinned = TaskSession::new();
        let old_gen = pinned.pin(&fw);

        let new_lines = lines(&new_set);
        let (applied, new_gen) = fw
            .reload(
                new_lines.iter().map(String::as_str),
                &mut env.mac,
                &mut env.programs,
            )
            .unwrap();
        prop_assert_eq!(applied, new_set.len());
        prop_assert!(new_gen > old_gen);

        // The in-flight invocation completes under the old ruleset.
        let d = pinned.evaluate_pinned(&fw, &mut env, LsmOperation::FileOpen);
        prop_assert_eq!(d.generation, old_gen);
        prop_assert_eq!(d.verdict == Verdict::Deny, expect_old);

        // A fresh session sees only the new ruleset.
        let mut fresh = TaskSession::new();
        let d = fresh.evaluate(&fw, &mut env, LsmOperation::FileOpen);
        prop_assert_eq!(d.generation, new_gen);
        prop_assert_eq!(d.verdict == Verdict::Deny, expect_new);

        // The pinned session catches up as soon as it stops pinning.
        let d = pinned.evaluate(&fw, &mut env, LsmOperation::FileOpen);
        prop_assert_eq!(d.generation, new_gen);
        prop_assert_eq!(d.verdict == Verdict::Deny, expect_new);
    }

    // A reload batch containing any bad line publishes nothing: the
    // generation, the rule count, and every verdict stay exactly as
    // they were.
    #[test]
    fn failed_reload_is_all_or_nothing(
        keep in prop::collection::vec(0usize..5, 1..5),
        replacement in prop::collection::vec(0usize..5, 1..5),
        bad_pos in 0usize..5,
        access in 0usize..5,
    ) {
        use process_firewall::types::LsmOperation;

        let labels = label_pool();
        let mut env = reload_env::Env::new(labels[access]);
        let fw = ProcessFirewall::new(OptLevel::Full);
        let old_lines: Vec<String> = keep
            .iter()
            .map(|&l| format!("pftables -o FILE_OPEN -d {} -j DROP", labels[l]))
            .collect();
        fw.install_all(
            old_lines.iter().map(String::as_str),
            &mut env.mac,
            &mut env.programs,
        )
        .unwrap();
        let gen_before = fw.generation();
        let count_before = fw.rule_count();
        let verdict_before = fw.evaluate(&mut env, LsmOperation::FileOpen).verdict;

        let mut batch: Vec<String> = replacement
            .iter()
            .map(|&l| format!("pftables -o FILE_OPEN -d {} -j DROP", labels[l]))
            .collect();
        batch.insert(
            bad_pos.min(batch.len()),
            "pftables --definitely-not-a-flag".to_owned(),
        );
        let err = fw.reload(
            batch.iter().map(String::as_str),
            &mut env.mac,
            &mut env.programs,
        );
        prop_assert!(err.is_err());
        prop_assert_eq!(fw.generation(), gen_before, "generation leaked");
        prop_assert_eq!(fw.rule_count(), count_before, "rules leaked");
        let verdict_after = fw.evaluate(&mut env, LsmOperation::FileOpen).verdict;
        prop_assert_eq!(verdict_after, verdict_before, "verdict changed");
    }
}

// ---------------------------------------------------------------------
// Parser robustness: arbitrary input must error, never panic.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_garbage(line in ".{0,120}") {
        let mut mac = process_firewall::mac::ubuntu_mini();
        let mut progs = Interner::new();
        let _ = process_firewall::firewall::lang::parse_command(&line, &mut mac, &mut progs);
    }

    #[test]
    fn parser_never_panics_on_pftables_prefixed_garbage(
        toks in prop::collection::vec("[-a-zA-Z0-9{}~|_./']{1,12}", 0..12)
    ) {
        let line = format!("pftables {}", toks.join(" "));
        let mut mac = process_firewall::mac::ubuntu_mini();
        let mut progs = Interner::new();
        let _ = process_firewall::firewall::lang::parse_command(&line, &mut mac, &mut progs);
    }

    #[test]
    fn log_parser_never_panics_on_garbage(json in ".{0,200}") {
        let _ = process_firewall::firewall::LogEntry::parse_json(&json);
    }

    #[test]
    fn policy_parser_never_panics_on_garbage(text in "(.|\n){0,200}") {
        let _ = process_firewall::mac::parse_policy(&text);
    }
}
