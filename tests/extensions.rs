//! Integration tests for the extensions beyond the paper's prototype:
//! chain management, the INTERP and CALLER match modules, hit counters,
//! the policy language, and attack-surface recording.

use process_firewall::firewall::render_rules;
use process_firewall::os::interp::{include_file, PHP};
use process_firewall::prelude::*;

#[test]
fn chain_management_commands() {
    let mut k = standard_world();
    // -N declares, rules append into it, -F empties, -X removes.
    k.install_rules(["pftables -N quarantine"]).unwrap();
    k.install_rules(["pftables -A quarantine -o FILE_OPEN -j DROP"])
        .unwrap();
    assert_eq!(k.firewall.rule_count(), 1);
    // Duplicate -N is rejected; deleting a non-empty chain is rejected.
    assert!(k.install_rules(["pftables -N quarantine"]).is_err());
    assert!(k.install_rules(["pftables -X quarantine"]).is_err());
    k.install_rules(["pftables -F quarantine"]).unwrap();
    assert_eq!(k.firewall.rule_count(), 0);
    k.install_rules(["pftables -X quarantine"]).unwrap();
    // Built-ins cannot be created or deleted.
    assert!(k.install_rules(["pftables -N input"]).is_err());
    assert!(k.install_rules(["pftables -X input"]).is_err());
    // -F with no chain flushes everything.
    k.install_rules([
        "pftables -o FILE_OPEN -j DROP",
        "pftables -I signal_chain -m SIGNAL_MATCH -j DROP",
    ])
    .unwrap();
    k.install_rules(["pftables -F"]).unwrap();
    assert_eq!(k.firewall.rule_count(), 0);
}

#[test]
fn quarantine_chain_participates_in_evaluation() {
    // A user chain reached via jump behaves like iptables: the jump rule
    // selects traffic, the user chain decides.
    let mut k = standard_world();
    k.install_rules([
        "pftables -N quarantine",
        "pftables -I input -d tmp_t -j QUARANTINE",
        "pftables -A quarantine -o FILE_WRITE -j DROP",
    ])
    .unwrap();
    let pid = k.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
    let fd = k
        .open(
            pid,
            "/tmp/q",
            OpenFlags {
                read: true,
                write: true,
                create: true,
                mode: 0o644,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(k.read(pid, fd).is_ok(), "reads fall through the chain");
    let e = k.write(pid, fd, b"x").unwrap_err();
    assert!(e.is_firewall_denial(), "writes die in quarantine");
}

#[test]
fn interp_module_scopes_rules_to_one_script() {
    // Two PHP scripts run in the same interpreter; only the plugin is
    // confined.
    let mut k = standard_world();
    k.install_rules(["pftables -p /usr/bin/php5 -i 0x27ad2c -o FILE_OPEN \
         -m INTERP --script /var/www/plugin.php -d ~{httpd_user_script_exec_t} -j DROP"])
        .unwrap();
    let php = k.spawn("httpd_t", "/usr/bin/php5", Uid(33), Gid(33));
    // The confined plugin cannot include /etc files...
    let e = include_file(&mut k, php, PHP, "/var/www/plugin.php", 3, "/etc/passwd").unwrap_err();
    assert!(e.is_firewall_denial());
    // ...but the trusted index.php still can (same interpreter binary,
    // same entrypoint pc, different script).
    assert!(include_file(&mut k, php, PHP, "/var/www/index.php", 3, "/etc/passwd").is_ok());
}

#[test]
fn interp_module_line_constraint() {
    let mut k = standard_world();
    k.install_rules(["pftables -o FILE_OPEN -m INTERP --script /var/www/x.php --line 7 -j DROP"])
        .unwrap();
    let php = k.spawn("httpd_t", "/usr/bin/php5", Uid(33), Gid(33));
    let blocked = include_file(&mut k, php, PHP, "/var/www/x.php", 7, "/etc/passwd");
    assert!(blocked.unwrap_err().is_firewall_denial());
    let allowed = include_file(&mut k, php, PHP, "/var/www/x.php", 8, "/etc/passwd");
    assert!(allowed.is_ok(), "different line, rule does not apply");
}

#[test]
fn hit_counters_show_in_listing() {
    let mut k = standard_world();
    k.install_rules(["pftables -o FILE_OPEN -d tmp_t -j DROP"])
        .unwrap();
    let pid = k.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
    for _ in 0..3 {
        let _ = k.open(pid, "/tmp/x", OpenFlags::creat(0o644));
    }
    let listing = render_rules(&k.firewall);
    assert!(listing.contains("hits=3"), "{listing}");
}

#[test]
fn policy_language_drives_adversary_accessibility_end_to_end() {
    // Build a kernel over a *parsed* policy instead of the built-in one
    // and check the firewall's ADV_ACCESS module follows it.
    let policy = process_firewall::mac::parse_policy(
        "
        subject daemon_t user_t
        object spool_t conf_t root_t
        syshigh daemon_t conf_t root_t
        allow daemon_t spool_t rwx
        allow daemon_t conf_t rx
        allow user_t spool_t rwx
        filecon /spool spool_t
        filecon /conf conf_t
        ",
    )
    .unwrap();
    let mut k = Kernel::new(policy);
    k.put_file("/spool/job", b"j", 0o666, Uid(1000), Gid(1000))
        .unwrap();
    k.put_file("/conf/daemon.conf", b"c", 0o644, Uid::ROOT, Gid::ROOT)
        .unwrap();
    k.install_rules(["pftables -o FILE_OPEN -m ADV_ACCESS --write --accessible -j DROP"])
        .unwrap();
    let daemon = k.spawn("daemon_t", "/sbin/daemon", Uid::ROOT, Gid::ROOT);
    // spool_t is user-writable → adversary-accessible → dropped.
    assert!(k
        .open(daemon, "/spool/job", OpenFlags::rdonly())
        .unwrap_err()
        .is_firewall_denial());
    // conf_t is TCB-only → allowed.
    assert!(k
        .open(daemon, "/conf/daemon.conf", OpenFlags::rdonly())
        .is_ok());
}

#[test]
fn surface_recording_is_off_by_default_and_scoped() {
    let mut k = standard_world();
    let pid = k.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
    k.open(pid, "/etc/passwd", OpenFlags::rdonly()).unwrap();
    assert!(k.surface.is_empty(), "recording must be opt-in");
    k.record_surface = true;
    k.open(pid, "/etc/passwd", OpenFlags::rdonly()).unwrap();
    assert!(!k.surface.is_empty());
    assert!(
        k.surface.iter().all(|e| !e.adversary_writable),
        "/ and /etc are TCB directories"
    );
}

#[test]
fn owner_match_module_gates_on_dac_owner() {
    let mut k = standard_world();
    // Drop opens of files owned by uid 1000 (regardless of label).
    k.install_rules(["pftables -o FILE_OPEN -m OWNER --uid 1000 -j DROP"])
        .unwrap();
    k.put_file("/tmp/theirs", b"x", 0o644, Uid(1000), Gid(1000))
        .unwrap();
    k.put_file("/tmp/roots", b"x", 0o644, Uid::ROOT, Gid::ROOT)
        .unwrap();
    let pid = k.spawn("staff_t", "/bin/sh", Uid::ROOT, Gid::ROOT);
    assert!(k
        .open(pid, "/tmp/theirs", OpenFlags::rdonly())
        .unwrap_err()
        .is_firewall_denial());
    assert!(k.open(pid, "/tmp/roots", OpenFlags::rdonly()).is_ok());
}

#[test]
fn frame_limit_dos_guard_fails_open_for_that_process_only() {
    // §4.4: an absurdly deep (attacker-built) stack aborts unwinding;
    // the process loses only its own protection.
    let mut k = standard_world();
    k.install_rules([
        "pftables -p /bin/sh -i 0x1 -o FILE_OPEN -d tmp_t -j DROP",
        "pftables -o FILE_WRITE -d etc_t -j DROP",
    ])
    .unwrap();
    let evil = k.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
    let prog = k.programs.intern("/bin/sh");
    for i in 0..(k.frame_limit + 10) {
        k.task_mut(evil)
            .unwrap()
            .push_frame(process_firewall::os::Frame {
                program: prog,
                pc: if i == 0 { 0x1 } else { 0x999 },
            });
    }
    k.put_file("/tmp/bait", b"", 0o666, Uid(1000), Gid(1000))
        .unwrap();
    // The entrypoint rule cannot match (unwind aborted): fails open.
    assert!(k.open(evil, "/tmp/bait", OpenFlags::rdonly()).is_ok());
    // But entrypoint-independent rules still protect everyone.
    let fd = k.open(evil, "/etc/passwd", OpenFlags::rdonly()).unwrap();
    let _ = fd;
    let root = k.spawn("init_t", "/sbin/init", Uid::ROOT, Gid::ROOT);
    let wfd = k
        .open(
            root,
            "/etc/passwd",
            OpenFlags {
                write: true,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(k.write(root, wfd, b"x").unwrap_err().is_firewall_denial());
}
