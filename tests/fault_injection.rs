//! Fault-injection hardening of the hook-evaluation path.
//!
//! The fail-safe contract under test: when a context fetch *errors*
//! (as opposed to the context being benignly absent), a DROP rule must
//! fail closed by default, the decision must be reported degraded, and
//! no exploit ever slips through on an Allow that looks ordinary.
//!
//! Three layers of coverage:
//!
//! 1. a per-rule × per-field sweep — every Table 5 exploit rule is
//!    driven by an attack environment that it denies fault-free, then
//!    each fallible context channel is failed individually at 100%:
//!    the access must still be denied **or** the decision must carry
//!    `degraded` (no silent allows);
//! 2. a seeded soak at the paper-relevant 10% unwind-failure rate over
//!    the full Table 5 ruleset, single- and multi-threaded, checking
//!    zero exploit successes and the counter conservation invariant;
//! 3. a kernel-level run with [`Kernel::fault_injection`] armed, so the
//!    hook plumbing (not just the engine) is exercised.

use std::sync::{Arc, Barrier};

use process_firewall::attacks::ruleset::{self, full_rule_base, table5_rules, FULL_RULE_COUNT};
use process_firewall::firewall::{
    state_key, EvalEnv, FaultConfig, FaultInjector, FaultyEnv, ObjectInfo, OptLevel,
    ProcessFirewall, SignalInfo, TaskSession,
};
use process_firewall::mac::{ubuntu_mini, MacPolicy};
use process_firewall::types::{
    DeviceId, Gid, InodeNum, Interner, LsmOperation, Mode, Pid, ProgramId, ResourceId, SecId,
    SignalNum, Uid, Verdict,
};

/// A configurable environment that can impersonate each Table 5
/// victim precisely enough for its rule to fire.
struct AttackEnv {
    mac: MacPolicy,
    programs: Interner,
    subject: SecId,
    program: ProgramId,
    pc: u64,
    object: ObjectInfo,
    link_owner: Option<Uid>,
    state: std::collections::HashMap<u64, u64>,
    signal: Option<SignalInfo>,
    origin: Option<u64>,
}

impl AttackEnv {
    /// `programs` must be (a clone of) the interner the rules were
    /// installed through, so entrypoint `ProgramId`s line up.
    fn new(
        programs: Interner,
        subject: &str,
        program: &str,
        pc: u64,
        object_label: &str,
        ino: u64,
        owner: u32,
    ) -> Self {
        let mac = ubuntu_mini();
        let mut programs = programs;
        let subject = mac.lookup_label(subject).unwrap();
        let program = programs.intern(program);
        let sid = mac.lookup_label(object_label).unwrap();
        AttackEnv {
            mac,
            programs,
            subject,
            program,
            pc,
            object: ObjectInfo {
                sid,
                resource: ResourceId::File {
                    dev: DeviceId(0),
                    ino: InodeNum(ino),
                },
                owner: Uid(owner),
                group: Gid(owner),
                mode: Mode::FILE_DEFAULT,
            },
            link_owner: None,
            state: std::collections::HashMap::new(),
            signal: None,
            origin: None,
        }
    }
}

impl EvalEnv for AttackEnv {
    fn subject_sid(&self) -> SecId {
        self.subject
    }
    fn program(&self) -> ProgramId {
        self.program
    }
    fn pid(&self) -> Pid {
        Pid(1)
    }
    fn unwind_entrypoint(&mut self) -> Option<(ProgramId, u64)> {
        Some((self.program, self.pc))
    }
    fn object(&self) -> Option<ObjectInfo> {
        Some(self.object)
    }
    fn link_target_owner(&mut self) -> Option<Uid> {
        self.link_owner
    }
    fn syscall_arg(&self, _idx: usize) -> u64 {
        0
    }
    fn signal(&self) -> Option<SignalInfo> {
        self.signal
    }
    fn subject_origin(&self) -> Option<u64> {
        self.origin
    }
    fn mac(&self) -> &MacPolicy {
        &self.mac
    }
    fn program_name(&self, id: ProgramId) -> String {
        self.programs.resolve(id).to_owned()
    }
    fn state_get(&self, key: u64) -> Option<u64> {
        self.state.get(&key).copied()
    }
    fn state_set(&mut self, key: u64, value: u64) {
        self.state.insert(key, value);
    }
    fn state_unset(&mut self, key: u64) {
        self.state.remove(&key);
    }
    fn cache_get(&self, _slot: u8) -> Option<u64> {
        None
    }
    fn cache_put(&mut self, _slot: u8, _value: u64) {}
    fn now(&self) -> u64 {
        0
    }
}

/// One Table 5 exploit (DROP) rule plus the attack that triggers it.
struct Attack {
    rule: &'static str,
    text: &'static str,
    op: LsmOperation,
    build: fn(Interner) -> AttackEnv,
}

/// The attacks, one per exploit rule of Table 5 (the STATE-set and
/// chain-routing rules R5/R9/R11/R12 are support rules, exercised
/// through R6 and R10).
fn attacks() -> Vec<Attack> {
    vec![
        Attack {
            rule: "R1",
            text: ruleset::R1,
            op: LsmOperation::FileOpen,
            // ld.so's library-open entrypoint reaching a planted tmp_t
            // trojan (E1/E8).
            build: |p| AttackEnv::new(p, "httpd_t", "/lib/ld-2.15.so", 0x596b, "tmp_t", 11, 1000),
        },
        Attack {
            rule: "R2",
            text: ruleset::R2,
            op: LsmOperation::FileOpen,
            // Python module load redirected into /tmp (E2).
            build: |p| {
                AttackEnv::new(
                    p,
                    "staff_t",
                    "/usr/bin/python2.7",
                    0x34f05,
                    "tmp_t",
                    12,
                    1000,
                )
            },
        },
        Attack {
            rule: "R3",
            text: ruleset::R3,
            op: LsmOperation::UnixStreamSocketConnect,
            // libdbus connecting to a squatted session-bus socket (E3).
            build: |p| {
                AttackEnv::new(
                    p,
                    "system_dbusd_t",
                    "/lib/libdbus-1.so.3",
                    0x39231,
                    "tmp_t",
                    13,
                    1000,
                )
            },
        },
        Attack {
            rule: "R4",
            text: ruleset::R4,
            op: LsmOperation::FileOpen,
            // PHP include of a non-script label (E4 LFI).
            build: |p| AttackEnv::new(p, "httpd_t", "/usr/bin/php5", 0x27ad2c, "etc_t", 14, 0),
        },
        Attack {
            rule: "R6",
            text: ruleset::R6,
            op: LsmOperation::SocketSetattr,
            // D-Bus chmod reaching a different inode than was bound (E6):
            // recorded C_INO (999) ≠ current resource id.
            build: |p| {
                let mut env = AttackEnv::new(
                    p,
                    "system_dbusd_t",
                    "/bin/dbus-daemon",
                    0x3c786,
                    "tmp_t",
                    15,
                    0,
                );
                env.state.insert(0xbeef, 999);
                env
            },
        },
        Attack {
            rule: "R7",
            text: ruleset::R7,
            op: LsmOperation::FileOpen,
            // java reading a low-integrity configuration file (E7).
            build: |p| AttackEnv::new(p, "staff_t", "/usr/bin/java", 0x5d7e, "tmp_t", 16, 1000),
        },
        Attack {
            rule: "R8",
            text: ruleset::R8,
            op: LsmOperation::LinkRead,
            // Apache following a symlink whose owner differs from the
            // target's owner.
            build: |p| {
                let mut env =
                    AttackEnv::new(p, "httpd_t", "/usr/bin/apache2", 0x2d637, "tmp_t", 17, 1000);
                env.link_owner = Some(Uid(0));
                env
            },
        },
        Attack {
            rule: "R10",
            text: ruleset::R10,
            op: LsmOperation::ProcessSignalDelivery,
            // Blockable handled signal delivered while a handler runs
            // (E5): R9 routes to the signal chain, R10 drops.
            build: |p| {
                let mut env = AttackEnv::new(p, "sshd_t", "/usr/sbin/sshd", 0x1, "tmp_t", 18, 0);
                env.signal = Some(SignalInfo {
                    signal: SignalNum::SIGALRM,
                    has_handler: true,
                    unblockable: false,
                    in_handler: true,
                });
                env.state.insert(state_key("'sig'"), 1);
                env
            },
        },
        Attack {
            rule: "SAFE_OPEN",
            text: ruleset::SAFE_OPEN,
            op: LsmOperation::LinkRead,
            // safe_open: adversary-writable symlink pointing at somebody
            // else's file (E9).
            build: |p| {
                let mut env = AttackEnv::new(p, "init_t", "/sbin/init", 0x9, "tmp_t", 19, 1000);
                env.link_owner = Some(Uid(0));
                env
            },
        },
    ]
}

/// Builds a firewall carrying the 13 Table 5 rules and returns the
/// interner the entrypoint programs were registered in.
fn table5_firewall(level: OptLevel) -> (ProcessFirewall, Interner) {
    let mut mac = ubuntu_mini();
    let mut programs = Interner::new();
    let pf = ProcessFirewall::new(level);
    pf.install_all(table5_rules(), &mut mac, &mut programs)
        .unwrap();
    (pf, programs)
}

/// Every fallible context channel, failed individually at 100%.
fn single_field_configs() -> [(&'static str, FaultConfig); 5] {
    let off = FaultConfig::off(1);
    [
        (
            "unwind",
            FaultConfig {
                unwind_fail: 1.0,
                ..off
            },
        ),
        (
            "object",
            FaultConfig {
                object_fail: 1.0,
                ..off
            },
        ),
        (
            "link",
            FaultConfig {
                link_fail: 1.0,
                ..off
            },
        ),
        (
            "state",
            FaultConfig {
                state_fail: 1.0,
                ..off
            },
        ),
        (
            "origin",
            FaultConfig {
                origin_fail: 1.0,
                ..off
            },
        ),
    ]
}

#[test]
fn attack_envs_are_denied_fault_free() {
    // The sweep below is only meaningful if each environment actually
    // triggers its rule when nothing is injected.
    for level in [OptLevel::Full, OptLevel::EptSpc] {
        let (pf, programs) = table5_firewall(level);
        for attack in attacks() {
            let mut env = (attack.build)(programs.clone());
            let d = pf.evaluate(&mut env, attack.op);
            assert_eq!(
                d.verdict,
                Verdict::Deny,
                "{} attack env must be denied fault-free at {level:?}",
                attack.rule
            );
            assert!(
                !d.degraded,
                "{} fault-free deny is not degraded",
                attack.rule
            );
        }
    }
}

#[test]
fn no_exploit_rule_silently_allows_under_any_single_field_fault() {
    // Satellite: exploit rule × individually-failed context field. The
    // access is either still blocked, or the decision says `degraded` —
    // an Allow that looks ordinary never happens.
    for level in [OptLevel::Full, OptLevel::EptSpc] {
        for (field, cfg) in single_field_configs() {
            let (pf, programs) = table5_firewall(level);
            let injector = FaultInjector::new(cfg);
            for attack in attacks() {
                let mut env = (attack.build)(programs.clone());
                let mut faulty = FaultyEnv::new(&mut env, &injector);
                let d = pf.evaluate(&mut faulty, attack.op);
                assert!(
                    d.verdict == Verdict::Deny || d.degraded,
                    "silent allow: rule {} with failed {field} field at {level:?}",
                    attack.rule
                );
            }
        }
    }
}

#[test]
fn unwind_faults_fail_closed_for_every_entrypoint_rule() {
    // Stronger than the no-silent-allow property: the entrypoint-bound
    // exploit rules (R1–R4, R7, R8) are DROP rules, so the engine
    // default must deny outright when the unwinder errors. Each rule is
    // installed alone so no other Table 5 rule can shadow the verdict.
    let entrypoint_rules = ["R1", "R2", "R3", "R4", "R7", "R8"];
    for level in [OptLevel::Full, OptLevel::EptSpc] {
        for attack in attacks()
            .into_iter()
            .filter(|a| entrypoint_rules.contains(&a.rule))
        {
            let mut mac = ubuntu_mini();
            let mut programs = Interner::new();
            let pf = ProcessFirewall::new(level);
            pf.install(attack.text, &mut mac, &mut programs).unwrap();
            let injector = FaultInjector::new(FaultConfig {
                unwind_fail: 1.0,
                ..FaultConfig::off(2)
            });
            let mut env = (attack.build)(programs.clone());
            let mut faulty = FaultyEnv::new(&mut env, &injector);
            let d = pf.evaluate(&mut faulty, attack.op);
            assert_eq!(
                d.verdict,
                Verdict::Deny,
                "{} must fail closed at {level:?}",
                attack.rule
            );
            assert!(d.degraded, "{} fail-closed deny is degraded", attack.rule);
            assert_eq!(pf.metrics().degraded_drops(), 1, "{}", attack.rule);
        }
    }
}

#[test]
fn origin_faults_fail_closed_for_origin_rules() {
    // The post-compromise containment rule: tainted httpd workers may
    // not write. When the origin (taint label) fetch errors, the DROP
    // rule must fail closed — a blinded taint check never turns into a
    // silent allow for a subject that *is* tainted.
    const RULE: &str = "pftables -s httpd_t --origin tainted -o FILE_WRITE -j DROP";
    for level in [OptLevel::Full, OptLevel::EptSpc] {
        let mut mac = ubuntu_mini();
        let mut programs = Interner::new();
        let pf = ProcessFirewall::new(level);
        pf.install(RULE, &mut mac, &mut programs).unwrap();

        let mut env = AttackEnv::new(
            programs.clone(),
            "httpd_t",
            "/usr/bin/apache2",
            0x2d637,
            "var_log_t",
            21,
            0,
        );
        env.origin = Some(2); // tainted
        let d = pf.evaluate(&mut env, LsmOperation::FileWrite);
        assert_eq!(d.verdict, Verdict::Deny, "tainted write denied fault-free");
        assert!(!d.degraded);

        let injector = FaultInjector::new(FaultConfig {
            origin_fail: 1.0,
            ..FaultConfig::off(3)
        });
        let mut faulty = FaultyEnv::new(&mut env, &injector);
        let d = pf.evaluate(&mut faulty, LsmOperation::FileWrite);
        assert_eq!(
            d.verdict,
            Verdict::Deny,
            "origin fault must fail closed at {level:?}"
        );
        assert!(d.degraded, "fail-closed deny is reported degraded");
        assert_eq!(pf.metrics().degraded_drops(), 1);
        assert!(injector.stats().origin > 0, "the origin channel fired");

        // The benign twin: an untainted worker is allowed fault-free,
        // and under an origin fault may only pass *visibly* degraded.
        env.origin = Some(0);
        let d = pf.evaluate(&mut env, LsmOperation::FileWrite);
        assert_eq!(d.verdict, Verdict::Allow, "untainted write is benign");
        assert!(!d.degraded);
        let mut faulty = FaultyEnv::new(&mut env, &injector);
        let d = pf.evaluate(&mut faulty, LsmOperation::FileWrite);
        assert!(
            d.verdict == Verdict::Deny || d.degraded,
            "no silent allow under a blinded taint check at {level:?}"
        );
    }
}

#[test]
fn soak_ten_percent_unwind_faults_never_let_an_exploit_through() {
    // The acceptance soak: a fixed-seed 10% unwind-failure rate over
    // the full Table 5 ruleset. Every attack evaluation, across every
    // round, must come back Deny — fail-closed defaults leave no
    // window. Counter conservation must survive the degraded paths.
    const ROUNDS: usize = 500;
    let (pf, programs) = table5_firewall(OptLevel::EptSpc);
    let injector = FaultInjector::new(FaultConfig {
        unwind_fail: 0.10,
        ..FaultConfig::off(0xf417)
    });
    let attacks = attacks();
    let mut envs: Vec<AttackEnv> = attacks
        .iter()
        .map(|a| (a.build)(programs.clone()))
        .collect();
    for round in 0..ROUNDS {
        for (attack, env) in attacks.iter().zip(envs.iter_mut()) {
            let mut faulty = FaultyEnv::new(env, &injector);
            let d = pf.evaluate(&mut faulty, attack.op);
            assert_eq!(
                d.verdict,
                Verdict::Deny,
                "exploit success: rule {} round {round}",
                attack.rule
            );
        }
    }
    let m = pf.metrics();
    assert!(injector.stats().unwind > 0, "the soak injected faults");
    assert!(m.degraded_drops() > 0, "degraded denials were recorded");
    assert_eq!(
        m.degraded_allows(),
        0,
        "no degraded allows on attack traffic"
    );
    assert_eq!(
        m.drops() + m.accepts() + m.default_allows(),
        m.invocations(),
        "counter conservation broke under faults"
    );
}

#[test]
fn eight_thread_soak_over_full_ruleset_under_faults() {
    // The CI soak lane: eight sessions hammer one shared firewall
    // carrying the full ~1218-rule base while a shared injector fails
    // every channel at 5%. Exploit traffic must never be allowed, and
    // the global counters must still balance.
    const WORKERS: usize = 8;
    const PER_WORKER: usize = 400;

    let mut mac = ubuntu_mini();
    let mut programs = Interner::new();
    let pf = Arc::new(ProcessFirewall::new(OptLevel::EptSpc));
    let lines = full_rule_base(FULL_RULE_COUNT);
    pf.install_all(lines.iter().map(String::as_str), &mut mac, &mut programs)
        .unwrap();
    let injector = Arc::new(FaultInjector::new(FaultConfig::uniform(0x50a6, 0.05)));
    let barrier = Arc::new(Barrier::new(WORKERS));

    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let pf = Arc::clone(&pf);
            let injector = Arc::clone(&injector);
            let barrier = Arc::clone(&barrier);
            let programs = programs.clone();
            std::thread::spawn(move || {
                let attacks = attacks();
                let mut envs: Vec<AttackEnv> = attacks
                    .iter()
                    .map(|a| (a.build)(programs.clone()))
                    .collect();
                let mut session = TaskSession::new();
                barrier.wait();
                for i in 0..PER_WORKER {
                    let idx = (i + w) % attacks.len();
                    let mut faulty = FaultyEnv::new(&mut envs[idx], &injector);
                    let d = session.evaluate(&pf, &mut faulty, attacks[idx].op);
                    assert!(
                        d.verdict == Verdict::Deny || d.degraded,
                        "silent allow on worker {w} iteration {i} (rule {})",
                        attacks[idx].rule
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let m = pf.metrics();
    assert_eq!(
        m.invocations(),
        (WORKERS * PER_WORKER) as u64,
        "every invocation was counted"
    );
    assert_eq!(
        m.drops() + m.accepts() + m.default_allows(),
        m.invocations(),
        "counter conservation broke under concurrent faults"
    );
    assert!(injector.stats().total() > 0);
}

#[test]
fn clock_fault_on_throttle_rule_fails_closed() {
    // A bucket generous enough that a healthy clock grants everything:
    // any denial below is attributable to the injected clock fault, not
    // to budget exhaustion.
    const RULE: &str = "pftables -o FILE_OPEN \
         -j RATELIMIT --rate 1000 --burst 1000 --exceed drop";
    let mut mac = ubuntu_mini();
    let mut programs = Interner::new();
    let pf = ProcessFirewall::new(OptLevel::EptSpc);
    pf.install(RULE, &mut mac, &mut programs).unwrap();

    let mut env = AttackEnv::new(
        programs.clone(),
        "user_t",
        "/bin/sh",
        0x100,
        "etc_t",
        5,
        1000,
    );
    assert_eq!(
        pf.evaluate(&mut env, LsmOperation::FileOpen).verdict,
        Verdict::Allow,
        "fault-free throttle grants within budget"
    );

    // A stopped clock must not turn the rate limit into an
    // unconditional allow: the engine default for throttle targets is
    // fail-closed, and the decision is reported degraded.
    let injector = FaultInjector::new(FaultConfig {
        clock_fail: 1.0,
        ..FaultConfig::off(7)
    });
    let mut faulty = FaultyEnv::new(&mut env, &injector);
    let d = pf.evaluate(&mut faulty, LsmOperation::FileOpen);
    assert_eq!(d.verdict, Verdict::Deny, "clock fault fails closed");
    assert!(d.degraded, "fail-closed throttle deny is degraded");
    assert_eq!(pf.metrics().degraded_drops(), 1);
    assert!(injector.stats().clock > 0, "the clock channel fired");

    // The explicit opt-out: `-P input --ctx-missing skip` lets traffic
    // through a blinded throttle, but never silently — the decision is
    // still marked degraded (and the lapse is logged).
    pf.install(
        "pftables -P input --ctx-missing skip",
        &mut mac,
        &mut programs,
    )
    .unwrap();
    let mut faulty = FaultyEnv::new(&mut env, &injector);
    let d = pf.evaluate(&mut faulty, LsmOperation::FileOpen);
    assert_eq!(d.verdict, Verdict::Allow, "skip policy stands aside");
    assert!(d.degraded, "no silent allow: the skip is reported degraded");
    assert_eq!(pf.metrics().degraded_allows(), 1);
}

#[test]
fn kernel_hook_applies_fault_injection() {
    // The pf-os plumbing: arm `Kernel::fault_injection` and replay the
    // E1 library-open attack through the real hook. With a 10% unwind
    // failure rate the trojan open must be denied on every iteration —
    // by R1 normally, by the fail-closed default when the unwinder
    // errors. FULL level (no per-syscall caching) so the FILE_OPEN
    // hook itself performs the fallible fetch rather than reusing a
    // value a DirSearch hook cached earlier in the same syscall.
    use process_firewall::prelude::*;

    let mut k = standard_world();
    k.install_rules(table5_rules()).unwrap();
    k.firewall.set_level(OptLevel::Full).unwrap();
    // Plant the trojan before arming the injector so setup is clean.
    let adversary = k.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
    k.mkdir(adversary, "/tmp/svn", 0o755).unwrap();
    let fd = k
        .open(
            adversary,
            "/tmp/svn/mod_dav_svn.so",
            OpenFlags::creat(0o755),
        )
        .unwrap();
    k.write(adversary, fd, b"TROJAN").unwrap();
    k.close(adversary, fd).unwrap();

    let apache = k.spawn("httpd_t", "/usr/bin/apache2", Uid::ROOT, Gid::ROOT);
    k.fault_injection = Some(FaultInjector::new(FaultConfig {
        unwind_fail: 0.10,
        ..FaultConfig::off(0xe1)
    }));

    for _ in 0..300 {
        let denied = k
            .with_frame(apache, "/lib/ld-2.15.so", 0x596b, |k| {
                k.open(apache, "/tmp/svn/mod_dav_svn.so", OpenFlags::rdonly())
            })
            .err()
            .map(|e| e.is_firewall_denial())
            .unwrap_or(false);
        assert!(denied, "trojan open slipped through the kernel hook");
    }
    let stats = k.fault_injection.as_ref().unwrap().stats();
    assert!(stats.unwind > 0, "the injector actually fired");
    assert!(k.firewall.metrics().degraded_drops() > 0);
}
