//! The distributor pipeline end-to-end: live system → LOG records →
//! JSON → parsed back → classified → suggested rules → reinstalled →
//! verified against attacks.

use process_firewall::firewall::LogEntry;
use process_firewall::os::interp::{include_file, PYTHON};
use process_firewall::prelude::*;
use process_firewall::rulegen::classify::accumulate;
use process_firewall::rulegen::{rules_from_trace, trace_from_logs};

fn exercise_service(k: &mut Kernel, iterations: usize) -> Pid {
    let service = k.spawn("staff_t", "/usr/bin/python2.7", Uid::ROOT, Gid::ROOT);
    for _ in 0..iterations {
        include_file(
            k,
            service,
            PYTHON,
            "/usr/bin/service",
            10,
            "/usr/share/pyshared/dstat_helpers.py",
        )
        .unwrap();
    }
    service
}

#[test]
fn logs_round_trip_through_json() {
    let mut k = standard_world();
    k.install_rules(["pftables -o FILE_OPEN -j LOG --tag trace"])
        .unwrap();
    exercise_service(&mut k, 5);
    let logs = k.firewall.take_logs();
    assert!(!logs.is_empty());
    for entry in &logs {
        let json = entry.to_json();
        let parsed = LogEntry::parse_json(&json).unwrap();
        assert_eq!(&parsed, entry, "JSON round trip must be lossless");
    }
}

#[test]
fn suggested_rules_block_unseen_attacks_without_false_positives() {
    // Phase 1: observe a healthy deployment.
    let mut k = standard_world();
    k.install_rules(["pftables -o FILE_OPEN -j LOG --tag trace"])
        .unwrap();
    let service = exercise_service(&mut k, 30);
    let logs = k.firewall.take_logs();

    // Phase 2: serialize to JSON and back (the distributor's files).
    let jsons: Vec<String> = logs.iter().map(LogEntry::to_json).collect();
    let reparsed: Vec<LogEntry> = jsons
        .iter()
        .map(|j| LogEntry::parse_json(j).unwrap())
        .collect();

    // Phase 3: classify and suggest.
    let stats = accumulate(&trace_from_logs(&reparsed));
    let rules = rules_from_trace(&stats, 10);
    assert!(!rules.is_empty(), "the module-load entrypoint qualifies");

    // Phase 4: install on a "customer" machine and attack it.
    let refs: Vec<&str> = rules.iter().map(String::as_str).collect();
    k.install_rules(refs).unwrap();
    let adversary = k.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
    let fd = k
        .open(adversary, "/tmp/dstat_helpers.py", OpenFlags::creat(0o644))
        .unwrap();
    k.close(adversary, fd).unwrap();
    let err = include_file(
        &mut k,
        service,
        PYTHON,
        "/usr/bin/service",
        10,
        "/tmp/dstat_helpers.py",
    )
    .unwrap_err();
    assert!(err.is_firewall_denial(), "unseen attack blocked");

    // Phase 5: the trained-on workload still runs (no false positive).
    include_file(
        &mut k,
        service,
        PYTHON,
        "/usr/bin/service",
        10,
        "/usr/share/pyshared/dstat_helpers.py",
    )
    .unwrap();
}

#[test]
fn both_class_entrypoints_yield_no_rules() {
    // An entrypoint that legitimately touches both integrity classes
    // (e.g. a file browser) must not get a rule — the FP-avoidance rule.
    let mut k = standard_world();
    k.install_rules(["pftables -o FILE_OPEN -j LOG --tag trace"])
        .unwrap();
    let browser = k.spawn("staff_t", "/usr/bin/nautilus", Uid(501), Gid(501));
    for i in 0..10 {
        let path = if i % 2 == 0 { "/etc/passwd" } else { "/tmp" };
        let _ = k.with_frame(browser, "/usr/bin/nautilus", 0x777, |k| {
            let fd = k.open(browser, path, OpenFlags::rdonly()).ok()?;
            k.close(browser, fd).ok()
        });
    }
    let stats = accumulate(&trace_from_logs(&k.firewall.take_logs()));
    // At a threshold of 1 the distributor only sees the first (high)
    // access, so a rule IS produced — and the threshold sweep flags it
    // as a would-be false positive, the paper's Table 8 phenomenon.
    let premature: Vec<_> = rules_from_trace(&stats, 1)
        .into_iter()
        .filter(|r| r.contains("nautilus") && r.contains("0x777"))
        .collect();
    assert_eq!(premature.len(), 1, "threshold 1 over-generates");
    let sweep = process_firewall::rulegen::sweep_thresholds(&stats, &[1]);
    assert!(sweep[0].false_positives >= 1);
    // Past the flip point the entrypoint classifies as Both and is
    // correctly skipped.
    let mature: Vec<_> = rules_from_trace(&stats, 10)
        .into_iter()
        .filter(|r| r.contains("nautilus") && r.contains("0x777"))
        .collect();
    assert!(
        mature.is_empty(),
        "both-class entrypoint must be skipped at a safe threshold: {mature:?}"
    );
}
