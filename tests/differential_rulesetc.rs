//! Four-way differential fuzzing of the RULESETC compiled-dispatch rung.
//!
//! RULESETC must be *transparent*: for any ruleset and access trace,
//! FULL ≡ EPTSPC ≡ VCACHE ≡ RULESETC on every verdict, on LOG streams
//! (timestamps excepted for the caching levels, whose cached-DROP
//! replays refresh `ts`), on final STATE dictionaries, and on the
//! drop/invocation counters. The seeded generator here spans every
//! selector family (`-s`/`-d`/`-p -i`/`-o`/`-r`/`--ctx-missing`/`-m`)
//! and every target family (ACCEPT, DROP, RETURN, LOG, TRACE, STATE,
//! RATELIMIT, QUOTA, user-chain jumps three levels deep), and each run
//! drives the trace through a mid-trace hot reload (artifact rebuild +
//! throttle carryover) and a fork (cold per-task session at the
//! caching levels).
//!
//! Under fault injection exact parity is impossible — the levels fetch
//! context in different orders, so the same fault stream lands on
//! different fetches — but the fail-safe direction is still total:
//! with fail-closed context policies, a faulty run may only convert
//! allows into denials, never the reverse. The fault tests assert that
//! *zero* accesses are silently allowed relative to the same level's
//! fault-free run.

use proptest::prelude::*;

use process_firewall::firewall::{FaultConfig, FaultInjector, OptLevel};
use process_firewall::prelude::*;
use process_firewall::rulegen::Xorshift64;

fn label_pool() -> [&'static str; 5] {
    ["tmp_t", "etc_t", "lib_t", "usr_t", "user_home_t"]
}

fn label_path(lbl: usize) -> &'static str {
    match label_pool()[lbl] {
        "tmp_t" => "/tmp",
        "etc_t" => "/etc/passwd",
        "lib_t" => "/lib/libc-2.15.so",
        "usr_t" => "/usr/share/pyshared/dstat_helpers.py",
        _ => "/home/user",
    }
}

/// Generates one Input-chain rule. `stateful` gates the impure pieces
/// (STATE, throttles, non-fail-closed `--ctx-missing` overrides) that
/// make faulty-vs-fault-free comparison undecidable.
fn input_rule(rng: &mut Xorshift64, stateful: bool) -> String {
    let labels = label_pool();
    let lbl = rng.below(5) as usize;
    let mut line = String::from("pftables -A INPUT");

    if rng.chance(15) {
        // Half match the victim's label, half a label it never runs as.
        let subj = if rng.chance(50) { "user_t" } else { "httpd_t" };
        line.push_str(&format!(" -s {subj}"));
    }
    match rng.below(100) {
        0..=69 => line.push_str(&format!(" -d {}", labels[lbl])),
        70..=77 => line.push_str(&format!(" -d ~{}", labels[lbl])),
        78..=85 => line.push_str(&format!(
            " -d {{{}|{}}}",
            labels[lbl],
            labels[rng.below(5) as usize]
        )),
        _ => {}
    }
    if rng.chance(40) {
        line.push_str(&format!(" -p /bin/victim -i {:#x}", 0x100 + rng.below(3)));
    }
    let op = ["FILE_OPEN", "DIR_SEARCH"][usize::from(rng.chance(25))];
    line.push_str(&format!(" -o {op}"));
    if rng.chance(10) {
        // Almost never matches a real device/inode fold — exercises
        // resource-based exclusion, not matching.
        line.push_str(&format!(" -r 0x{:x}", 0xbeef_0000u64 + rng.below(64)));
    }
    if stateful {
        if rng.chance(10) {
            let pol = ["skip", "match", "drop"][rng.below(3) as usize];
            line.push_str(&format!(" --ctx-missing {pol}"));
        }
        if rng.chance(12) {
            line.push_str(&format!(
                " -m STATE --key {} --cmp {}",
                40 + rng.below(4),
                rng.below(3)
            ));
        }
    } else if rng.chance(10) {
        line.push_str(" --ctx-missing drop");
    }

    let target = if stateful {
        match rng.below(100) {
            0..=24 => "DROP".to_owned(),
            25..=44 => "ACCEPT".to_owned(),
            45..=54 => "RETURN".to_owned(),
            55..=64 => format!("LOG --tag t{lbl}"),
            65..=69 => "TRACE".to_owned(),
            70..=79 => format!("svc{}", rng.below(3)),
            80..=87 => format!(
                "STATE --set --key {} --value {}",
                40 + rng.below(4),
                rng.below(3)
            ),
            88..=93 => "RATELIMIT --rate 300 --burst 2 --exceed drop".to_owned(),
            _ => "QUOTA --limit 3 --window 512 --exceed drop".to_owned(),
        }
    } else {
        match rng.below(100) {
            0..=29 => "DROP".to_owned(),
            30..=54 => "ACCEPT".to_owned(),
            55..=64 => "RETURN".to_owned(),
            65..=79 => format!("LOG --tag t{lbl}"),
            80..=86 => "TRACE".to_owned(),
            _ => format!("svc{}", rng.below(3)),
        }
    };
    line.push_str(&format!(" -j {target}"));
    line
}

/// A full seeded ruleset: three user chains (svc0 → svc1 → svc2, so
/// jumps nest to the depth the generator can reach) plus 8–20 Input
/// rules spanning every selector and target family over time.
fn gen_ruleset(rng: &mut Xorshift64, stateful: bool) -> Vec<String> {
    let mut lines: Vec<String> = (0..3).map(|c| format!("pftables -N svc{c}")).collect();
    for c in 0..3usize {
        for _ in 0..1 + rng.below(3) {
            let l = label_pool()[rng.below(5) as usize];
            let target = match rng.below(5) {
                0 if c < 2 => format!("svc{}", c + 1),
                1 => "RETURN".to_owned(),
                2 => "DROP".to_owned(),
                _ => "ACCEPT".to_owned(),
            };
            lines.push(format!(
                "pftables -A svc{c} -o FILE_OPEN -d {l} -j {target}"
            ));
        }
    }
    let n = 8 + rng.below(13);
    for _ in 0..n {
        lines.push(input_rule(rng, stateful));
    }
    lines
}

/// One access: which label's path, at which entrypoint pc, and whether
/// the access happens inside a stack frame at all (unframed accesses
/// exercise the Missing-entrypoint wildcard walk).
type Access = (usize, u64, bool);

fn gen_trace(rng: &mut Xorshift64, len: usize) -> Vec<Access> {
    (0..len)
        .map(|_| (rng.below(5) as usize, rng.below(3), rng.chance(80)))
        .collect()
}

/// Everything observable from one run.
struct Observed {
    outcomes: Vec<bool>,
    logs: Vec<LogEntry>,
    state_parent: Vec<(u64, u64)>,
    state_child: Vec<(u64, u64)>,
    invocations: u64,
    drops: u64,
    dispatch: u64,
    fallback: u64,
}

fn one_access(k: &mut Kernel, pid: Pid, access: Access) -> bool {
    let (lbl, pc, framed) = access;
    let open = |k: &mut Kernel| {
        k.open(pid, label_path(lbl), OpenFlags::rdonly())
            .map(|fd| k.close(pid, fd).unwrap())
            .is_ok()
    };
    if framed {
        k.with_frame(pid, "/bin/victim", 0x100 + pc, open)
    } else {
        open(k)
    }
}

/// Runs the seeded ruleset + trace at `level`: first half of the trace
/// on the parent, then a hot reload (two rules swapped, so compiled
/// artifacts rebuild and unchanged throttle rules carry their buckets),
/// then a fork, then the second half twice on the cold child (repeats
/// give the caching levels warm hits).
fn run_trace(level: OptLevel, seed: u64, stateful: bool, faults: Option<FaultConfig>) -> Observed {
    let mut rng = Xorshift64::new(seed);
    let rules = gen_ruleset(&mut rng, stateful);
    let trace = gen_trace(&mut rng, 12);

    let mut k = standard_world();
    k.install_rules(rules.iter().map(String::as_str)).unwrap();
    k.firewall.set_level(level).unwrap();
    k.fault_injection = faults.map(FaultInjector::new);

    let pid = k.spawn("user_t", "/bin/victim", Uid(1000), Gid(1000));
    let mut outcomes = Vec::new();
    for &a in &trace[..6] {
        outcomes.push(one_access(&mut k, pid, a));
    }

    // Hot reload: keep every line but the last Input rule, append two
    // fresh ones. Unchanged rule text is the throttle-carryover key.
    let mut rules2 = rules.clone();
    rules2.pop();
    rules2.push(input_rule(&mut rng, stateful));
    rules2.push(input_rule(&mut rng, stateful));
    let fw = k.firewall.clone();
    fw.reload(
        rules2.iter().map(String::as_str),
        &mut k.mac,
        &mut k.programs,
    )
    .unwrap();

    let child = k.fork(pid).unwrap();
    for &a in trace[6..].iter().chain(trace[6..].iter()) {
        outcomes.push(one_access(&mut k, child, a));
    }

    let collect = |k: &Kernel, p: Pid| {
        let mut s: Vec<(u64, u64)> = k
            .task(p)
            .unwrap()
            .pf_state
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect();
        s.sort_unstable();
        s
    };
    let state_parent = collect(&k, pid);
    let state_child = collect(&k, child);
    let m = k.firewall.metrics();
    Observed {
        outcomes,
        logs: k.firewall.take_logs(),
        state_parent,
        state_child,
        invocations: m.invocations(),
        drops: m.drops(),
        dispatch: m.rulesetc_dispatch(),
        fallback: m.rulesetc_fallback(),
    }
}

/// Timestamp-free view of a log stream, for comparing the caching
/// levels (a cached-DROP replay refreshes `ts` but nothing else).
fn strip_ts(logs: &[LogEntry]) -> Vec<LogEntry> {
    logs.iter()
        .map(|l| LogEntry { ts: 0, ..l.clone() })
        .collect()
}

fn assert_four_way(seed: u64) {
    let full = run_trace(OptLevel::Full, seed, true, None);
    let ept = run_trace(OptLevel::EptSpc, seed, true, None);
    let vc = run_trace(OptLevel::Vcache, seed, true, None);
    let rc = run_trace(OptLevel::RulesetC, seed, true, None);

    assert_eq!(
        full.outcomes, ept.outcomes,
        "FULL vs EPTSPC, seed {seed:#x}"
    );
    assert_eq!(full.outcomes, vc.outcomes, "FULL vs VCACHE, seed {seed:#x}");
    assert_eq!(
        full.outcomes, rc.outcomes,
        "FULL vs RULESETC, seed {seed:#x}"
    );

    assert_eq!(full.logs, ept.logs, "FULL vs EPTSPC logs, seed {seed:#x}");
    assert_eq!(
        strip_ts(&full.logs),
        strip_ts(&vc.logs),
        "FULL vs VCACHE logs, seed {seed:#x}"
    );
    assert_eq!(
        strip_ts(&full.logs),
        strip_ts(&rc.logs),
        "FULL vs RULESETC logs, seed {seed:#x}"
    );

    for other in [&ept, &vc, &rc] {
        assert_eq!(full.state_parent, other.state_parent, "seed {seed:#x}");
        assert_eq!(full.state_child, other.state_child, "seed {seed:#x}");
        assert_eq!(full.invocations, other.invocations, "seed {seed:#x}");
        assert_eq!(full.drops, other.drops, "seed {seed:#x}");
    }

    // The RULESETC run actually took the compiled path, and fault-free
    // it never fell back.
    assert!(rc.dispatch > 0, "no compiled dispatch ran, seed {seed:#x}");
    assert_eq!(rc.fallback, 0, "fault-free fallback, seed {seed:#x}");
    for baseline in [&full, &ept, &vc] {
        assert_eq!(baseline.dispatch, 0, "dispatch off-level, seed {seed:#x}");
    }
}

/// The two pinned CI seeds — deterministic four-way parity including
/// reload churn, fork cold-start, STATE/throttle side effects, and
/// every target family.
#[test]
fn four_way_differential_fixed_seed_a() {
    assert_four_way(0x5EED_0001_D1FF_0001);
}

#[test]
fn four_way_differential_fixed_seed_b() {
    assert_four_way(0x5EED_0002_D1FF_0002);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Randomized four-way parity over the full generator surface.
    #[test]
    fn four_way_differential_random_seeds(seed in any::<u64>()) {
        assert_four_way(seed);
    }

    // Fail-safe direction under fault injection: for each level, a run
    // with 5% uniform context-fetch faults may only turn allows into
    // denials relative to the same level's fault-free run (fail-closed
    // policies, stateless targets). Zero silent allows.
    #[test]
    fn faults_never_silently_allow(seed in any::<u64>()) {
        for level in [
            OptLevel::Full,
            OptLevel::EptSpc,
            OptLevel::Vcache,
            OptLevel::RulesetC,
        ] {
            let clean = run_trace(level, seed, false, None);
            let faulty = run_trace(
                level,
                seed,
                false,
                Some(FaultConfig::uniform(seed ^ 0xFA17, 0.05)),
            );
            for (i, (&c, &f)) in
                clean.outcomes.iter().zip(&faulty.outcomes).enumerate()
            {
                prop_assert!(
                    c || !f,
                    "silent allow at access {i}, level {level:?}, seed {seed:#x}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Origin-mutating traces, four ways. The victim taints mid-trace,
// forks (the child inherits the origin), and rides a hot reload; a
// stale cached verdict or a mis-bucketed `--origin` rule in the
// compiled dispatch would break the parity.
// ---------------------------------------------------------------------

fn origin_rule(rng: &mut Xorshift64) -> String {
    let labels = label_pool();
    let lbl = labels[rng.below(5) as usize];
    let mut line = String::from("pftables -A INPUT");
    if rng.chance(40) {
        line.push_str(" -s sshd_t");
    }
    if rng.chance(70) {
        line.push_str(&format!(" -d {lbl}"));
    }
    line.push_str(" -o FILE_OPEN");
    if rng.chance(60) {
        let level = ["tainted", "external"][usize::from(rng.chance(40))];
        line.push_str(&format!(" --origin {level}"));
    }
    let target = match rng.below(100) {
        0..=39 => "DROP",
        40..=69 => "ACCEPT",
        70..=84 => "RETURN",
        _ => "LOG --tag og",
    };
    line.push_str(&format!(" -j {target}"));
    line
}

/// Steps: `0..5` open the label's path, `5` taints the victim (reads
/// adversary-written bait), `6` forks, `7` hot-reloads the ruleset.
fn run_origin_trace(level: OptLevel, seed: u64) -> (Vec<bool>, u64, u64, u64) {
    let mut rng = Xorshift64::new(seed);
    let rules: Vec<String> = (0..6 + rng.below(8))
        .map(|_| origin_rule(&mut rng))
        .collect();
    let steps: Vec<u64> = (0..10).map(|_| rng.below(8)).collect();

    let mut k = standard_world();
    // Bait first: the generated rules may well drop tainted tmp_t
    // writes, and the adversary (user_t) is born tainted.
    let adversary = k.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
    let fd = k
        .open(adversary, "/tmp/evil", OpenFlags::creat(0o644))
        .unwrap();
    k.write(adversary, fd, b"payload").unwrap();
    k.close(adversary, fd).unwrap();

    k.install_rules(rules.iter().map(String::as_str)).unwrap();
    k.firewall.set_level(level).unwrap();
    let mut victim = k.spawn("sshd_t", "/bin/victim", Uid::ROOT, Gid::ROOT);
    let mut outcomes = Vec::new();
    // Doubled so the second half replays against caches warmed before
    // the second round of transitions.
    for &step in steps.iter().chain(steps.iter()) {
        let ok = match step {
            0..=4 => k
                .open(victim, label_path(step as usize), OpenFlags::rdonly())
                .map(|fd| k.close(victim, fd).unwrap())
                .is_ok(),
            5 => k
                .open(victim, "/tmp/evil", OpenFlags::rdonly())
                .and_then(|fd| {
                    k.read(victim, fd)?;
                    k.close(victim, fd)
                })
                .is_ok(),
            6 => {
                victim = k.fork(victim).unwrap();
                true
            }
            7 => {
                let fw = k.firewall.clone();
                fw.reload(
                    rules.iter().map(String::as_str),
                    &mut k.mac,
                    &mut k.programs,
                )
                .unwrap();
                true
            }
            _ => unreachable!(),
        };
        outcomes.push(ok);
    }
    let m = k.firewall.metrics();
    let (dispatch, fallback) = (m.rulesetc_dispatch(), m.rulesetc_fallback());
    (outcomes, k.task_origin(victim).unwrap(), dispatch, fallback)
}

fn assert_four_way_origin(seed: u64) {
    let (v_full, o_full, _, _) = run_origin_trace(OptLevel::Full, seed);
    let (v_ept, o_ept, _, _) = run_origin_trace(OptLevel::EptSpc, seed);
    let (v_vc, o_vc, _, _) = run_origin_trace(OptLevel::Vcache, seed);
    let (v_rc, o_rc, dispatch, fallback) = run_origin_trace(OptLevel::RulesetC, seed);

    assert_eq!(v_full, v_ept, "FULL vs EPTSPC, seed {seed:#x}");
    assert_eq!(v_full, v_vc, "FULL vs VCACHE, seed {seed:#x}");
    assert_eq!(v_full, v_rc, "FULL vs RULESETC, seed {seed:#x}");
    assert_eq!(o_full, o_ept, "origin FULL vs EPTSPC, seed {seed:#x}");
    assert_eq!(o_full, o_vc, "origin FULL vs VCACHE, seed {seed:#x}");
    assert_eq!(o_full, o_rc, "origin FULL vs RULESETC, seed {seed:#x}");
    assert!(dispatch > 0, "compiled dispatch idle, seed {seed:#x}");
    assert_eq!(
        fallback, 0,
        "origin rules must ride the compiled path fault-free, seed {seed:#x}"
    );
}

#[test]
fn four_way_origin_differential_fixed_seed() {
    assert_four_way_origin(0x5EED_0419_0419_0001);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn four_way_origin_differential_random_seeds(seed in any::<u64>()) {
        assert_four_way_origin(seed);
    }
}

/// Directed: with a high unwind-fault rate at RULESETC, the engine
/// degrades to the full-chain walk (counted as fallbacks), still denies
/// what the ruleset denies fault-free, and flags decisions degraded.
#[test]
fn rulesetc_fault_storm_degrades_but_fails_closed() {
    let seed = 0x0BAD_FA17_0BAD_FA17u64;
    let clean = run_trace(OptLevel::RulesetC, seed, false, None);
    let faulty = run_trace(
        OptLevel::RulesetC,
        seed,
        false,
        Some(FaultConfig {
            unwind_fail: 0.5,
            object_fail: 0.25,
            ..FaultConfig::off(seed)
        }),
    );
    assert!(faulty.fallback > 0, "fault storm never hit the fallback");
    for (i, (&c, &f)) in clean.outcomes.iter().zip(&faulty.outcomes).enumerate() {
        assert!(c || !f, "silent allow at access {i}");
    }
}
