//! Multi-process stress test for the concurrent firewall engine.
//!
//! Eight worker threads hammer one shared [`ProcessFirewall`] through
//! per-task [`TaskSession`]s (10 000 hook invocations each) while a
//! reloader thread keeps hot-swapping the entire rule base between two
//! variants, `pftables-restore`-style. The assertions are the two
//! linearizability properties the snapshot design promises:
//!
//! 1. **No torn reads.** Every verdict carries the generation of the
//!    snapshot that produced it, and the verdict is exactly what that
//!    generation's ruleset prescribes — never a mix of the old and new
//!    rules, never a generation that was not published.
//! 2. **No lost counts.** Globally,
//!    `drops + accepts + default_allows == invocations` even under
//!    maximal contention on the relaxed counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use process_firewall::firewall::{
    EvalEnv, ObjectInfo, OptLevel, ProcessFirewall, SignalInfo, TaskSession,
};
use process_firewall::mac::{ubuntu_mini, MacPolicy};
use process_firewall::types::{
    DeviceId, Gid, InodeNum, Interner, LsmOperation, Mode, Pid, ProgramId, ResourceId, SecId, Uid,
    Verdict,
};

const WORKERS: usize = 8;
const INVOCATIONS_PER_WORKER: usize = 10_000;
const MIN_RELOADS: u64 = 20;

/// The two ruleset variants the reloader alternates between. Variant
/// `v` drops opens of `LABELS[v]` and nothing else.
const LABELS: [&str; 2] = ["tmp_t", "etc_t"];

fn variant_lines(v: usize) -> Vec<String> {
    vec![format!("pftables -o FILE_OPEN -d {} -j DROP", LABELS[v])]
}

/// Minimal environment: fixed subject/program, one file object whose
/// label is chosen per invocation. Interning is deterministic, so every
/// thread's `ubuntu_mini()` agrees on all `SecId`s with the interners
/// the rules were installed through.
struct Env {
    mac: MacPolicy,
    programs: Interner,
    subject: SecId,
    program: ProgramId,
    objects: [ObjectInfo; 2],
    current: usize,
}

impl Env {
    fn new() -> Self {
        let mac = ubuntu_mini();
        let mut programs = Interner::new();
        let subject = mac.lookup_label("httpd_t").unwrap();
        let program = programs.intern("/usr/bin/apache2");
        let objects = [0, 1].map(|i| ObjectInfo {
            sid: mac.lookup_label(LABELS[i]).unwrap(),
            resource: ResourceId::File {
                dev: DeviceId(0),
                ino: InodeNum(5 + i as u64),
            },
            owner: Uid(0),
            group: Gid(0),
            mode: Mode::FILE_DEFAULT,
        });
        Env {
            mac,
            programs,
            subject,
            program,
            objects,
            current: 0,
        }
    }
}

impl EvalEnv for Env {
    fn subject_sid(&self) -> SecId {
        self.subject
    }
    fn program(&self) -> ProgramId {
        self.program
    }
    fn pid(&self) -> Pid {
        Pid(1)
    }
    fn unwind_entrypoint(&mut self) -> Option<(ProgramId, u64)> {
        Some((self.program, 0x100))
    }
    fn object(&self) -> Option<ObjectInfo> {
        Some(self.objects[self.current])
    }
    fn link_target_owner(&mut self) -> Option<Uid> {
        None
    }
    fn syscall_arg(&self, _idx: usize) -> u64 {
        0
    }
    fn signal(&self) -> Option<SignalInfo> {
        None
    }
    fn mac(&self) -> &MacPolicy {
        &self.mac
    }
    fn program_name(&self, id: ProgramId) -> String {
        self.programs.resolve(id).to_owned()
    }
    fn state_get(&self, _key: u64) -> Option<u64> {
        None
    }
    fn state_set(&mut self, _key: u64, _value: u64) {}
    fn state_unset(&mut self, _key: u64) {}
    fn cache_get(&self, _slot: u8) -> Option<u64> {
        None
    }
    fn cache_put(&mut self, _slot: u8, _value: u64) {}
    fn now(&self) -> u64 {
        0
    }
}

/// One worker observation: which snapshot generation produced which
/// verdict for which object label.
struct Observation {
    generation: u64,
    label: usize,
    denied: bool,
}

#[test]
fn concurrent_stress_with_hot_reloads_has_no_torn_reads() {
    let fw = Arc::new(ProcessFirewall::new(OptLevel::Full));
    // Generation → variant map. The initial install and every reload
    // record which ruleset each published generation carries.
    let published: Mutex<HashMap<u64, usize>> = Mutex::new(HashMap::new());

    {
        let mut env = Env::new();
        let lines = variant_lines(0);
        fw.install_all(
            lines.iter().map(String::as_str),
            &mut env.mac,
            &mut env.programs,
        )
        .unwrap();
        published.lock().unwrap().insert(fw.generation(), 0);
    }

    // Workers + reloader + the main thread all line up on the barrier.
    let start = Barrier::new(WORKERS + 2);
    let done = AtomicBool::new(false);
    let observations: Vec<Vec<Observation>> = std::thread::scope(|s| {
        // The reloader: flip between the two variants until the workers
        // finish, but always at least MIN_RELOADS times so the workers
        // genuinely race against swaps.
        let reloader = {
            let fw = Arc::clone(&fw);
            let done = &done;
            let published = &published;
            let start = &start;
            s.spawn(move || {
                let mut env = Env::new();
                start.wait();
                let mut n = 0u64;
                while !done.load(Ordering::Relaxed) || n < MIN_RELOADS {
                    let variant = ((n + 1) % 2) as usize; // 1, 0, 1, 0, ...
                    let lines = variant_lines(variant);
                    let (_count, generation) = fw
                        .reload(
                            lines.iter().map(String::as_str),
                            &mut env.mac,
                            &mut env.programs,
                        )
                        .expect("hot reload");
                    published.lock().unwrap().insert(generation, variant);
                    n += 1;
                    std::thread::yield_now();
                }
                n
            })
        };

        let workers: Vec<_> = (0..WORKERS)
            .map(|w| {
                let fw = Arc::clone(&fw);
                let start = &start;
                s.spawn(move || {
                    let mut env = Env::new();
                    let mut session = TaskSession::new();
                    let mut seen = Vec::with_capacity(INVOCATIONS_PER_WORKER);
                    start.wait();
                    for i in 0..INVOCATIONS_PER_WORKER {
                        let label = (w + i) % 2;
                        env.current = label;
                        let d = session.evaluate(&fw, &mut env, LsmOperation::FileOpen);
                        seen.push(Observation {
                            generation: d.generation,
                            label,
                            denied: d.verdict == Verdict::Deny,
                        });
                    }
                    seen
                })
            })
            .collect();

        start.wait();
        let observations: Vec<Vec<Observation>> =
            workers.into_iter().map(|h| h.join().unwrap()).collect();
        done.store(true, Ordering::Relaxed);
        let reloads = reloader.join().unwrap();
        assert!(reloads >= MIN_RELOADS);
        observations
    });

    // Property 1: every verdict is attributable to exactly one
    // published generation and matches that generation's ruleset.
    let published = published.into_inner().unwrap();
    let mut generations_seen = std::collections::HashSet::new();
    for obs in observations.iter().flatten() {
        let variant = published
            .get(&obs.generation)
            .unwrap_or_else(|| panic!("verdict from unpublished generation {}", obs.generation));
        let expect_deny = obs.label == *variant;
        assert_eq!(
            obs.denied,
            expect_deny,
            "torn read: generation {} (variant {}) gave {} for label {}",
            obs.generation,
            variant,
            if obs.denied { "DENY" } else { "ALLOW" },
            LABELS[obs.label]
        );
        generations_seen.insert(obs.generation);
    }
    assert!(
        !generations_seen.is_empty(),
        "workers recorded no generations"
    );

    // Property 2: the global counter invariant. Only the workers
    // evaluate, so invocations is exactly WORKERS * INVOCATIONS_PER_WORKER.
    let m = fw.metrics();
    assert_eq!(m.invocations(), (WORKERS * INVOCATIONS_PER_WORKER) as u64);
    assert_eq!(
        m.drops() + m.accepts() + m.default_allows(),
        m.invocations(),
        "lost counter updates under contention"
    );
}

/// A session pinned before a reload must keep evaluating under its old
/// snapshot even while other sessions see the new one — and both
/// must stay internally consistent for the whole overlap.
#[test]
fn pinned_sessions_and_fresh_sessions_coexist_across_reload() {
    let fw = ProcessFirewall::new(OptLevel::Full);
    let mut env = Env::new();
    fw.install_all(
        variant_lines(0).iter().map(String::as_str),
        &mut env.mac,
        &mut env.programs,
    )
    .unwrap();

    let mut pinned = TaskSession::new();
    let old_gen = pinned.pin(&fw);

    let (_, new_gen) = fw
        .reload(
            variant_lines(1).iter().map(String::as_str),
            &mut env.mac,
            &mut env.programs,
        )
        .unwrap();
    assert!(new_gen > old_gen);

    let mut fresh = TaskSession::new();
    for _ in 0..100 {
        env.current = 0; // tmp_t: dropped by variant 0, allowed by variant 1
        let d_old = pinned.evaluate_pinned(&fw, &mut env, LsmOperation::FileOpen);
        assert_eq!((d_old.generation, d_old.verdict), (old_gen, Verdict::Deny));
        let d_new = fresh.evaluate(&fw, &mut env, LsmOperation::FileOpen);
        assert_eq!((d_new.generation, d_new.verdict), (new_gen, Verdict::Allow));

        env.current = 1; // etc_t: the mirror image
        let d_old = pinned.evaluate_pinned(&fw, &mut env, LsmOperation::FileOpen);
        assert_eq!((d_old.generation, d_old.verdict), (old_gen, Verdict::Allow));
        let d_new = fresh.evaluate(&fw, &mut env, LsmOperation::FileOpen);
        assert_eq!((d_new.generation, d_new.verdict), (new_gen, Verdict::Deny));
    }
}
