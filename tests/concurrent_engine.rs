//! Multi-process stress test for the concurrent firewall engine.
//!
//! Eight worker threads hammer one shared [`ProcessFirewall`] through
//! per-task [`TaskSession`]s (10 000 hook invocations each) while a
//! reloader thread keeps hot-swapping the entire rule base between two
//! variants, `pftables-restore`-style. The assertions are the two
//! linearizability properties the snapshot design promises:
//!
//! 1. **No torn reads.** Every verdict carries the generation of the
//!    snapshot that produced it, and the verdict is exactly what that
//!    generation's ruleset prescribes — never a mix of the old and new
//!    rules, never a generation that was not published.
//! 2. **No lost counts.** Globally,
//!    `drops + accepts + default_allows == invocations` even under
//!    maximal contention on the relaxed counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use process_firewall::firewall::{
    EvalEnv, ObjectInfo, OptLevel, ProcessFirewall, SignalInfo, TaskSession,
};
use process_firewall::mac::{ubuntu_mini, MacPolicy};
use process_firewall::types::{
    DeviceId, Gid, InodeNum, Interner, LsmOperation, Mode, Pid, ProgramId, ResourceId, SecId, Uid,
    Verdict,
};

const WORKERS: usize = 8;
const INVOCATIONS_PER_WORKER: usize = 10_000;
const MIN_RELOADS: u64 = 20;

/// The two ruleset variants the reloader alternates between. Variant
/// `v` drops opens of `LABELS[v]` and nothing else.
const LABELS: [&str; 2] = ["tmp_t", "etc_t"];

fn variant_lines(v: usize) -> Vec<String> {
    vec![format!("pftables -o FILE_OPEN -d {} -j DROP", LABELS[v])]
}

/// Minimal environment: fixed subject/program, one file object whose
/// label is chosen per invocation. Interning is deterministic, so every
/// thread's `ubuntu_mini()` agrees on all `SecId`s with the interners
/// the rules were installed through.
struct Env {
    mac: MacPolicy,
    programs: Interner,
    subject: SecId,
    program: ProgramId,
    objects: [ObjectInfo; 2],
    current: usize,
}

impl Env {
    fn new() -> Self {
        let mac = ubuntu_mini();
        let mut programs = Interner::new();
        let subject = mac.lookup_label("httpd_t").unwrap();
        let program = programs.intern("/usr/bin/apache2");
        let objects = [0, 1].map(|i| ObjectInfo {
            sid: mac.lookup_label(LABELS[i]).unwrap(),
            resource: ResourceId::File {
                dev: DeviceId(0),
                ino: InodeNum(5 + i as u64),
            },
            owner: Uid(0),
            group: Gid(0),
            mode: Mode::FILE_DEFAULT,
        });
        Env {
            mac,
            programs,
            subject,
            program,
            objects,
            current: 0,
        }
    }
}

impl EvalEnv for Env {
    fn subject_sid(&self) -> SecId {
        self.subject
    }
    fn program(&self) -> ProgramId {
        self.program
    }
    fn pid(&self) -> Pid {
        Pid(1)
    }
    fn unwind_entrypoint(&mut self) -> Option<(ProgramId, u64)> {
        Some((self.program, 0x100))
    }
    fn object(&self) -> Option<ObjectInfo> {
        Some(self.objects[self.current])
    }
    fn link_target_owner(&mut self) -> Option<Uid> {
        None
    }
    fn syscall_arg(&self, _idx: usize) -> u64 {
        0
    }
    fn signal(&self) -> Option<SignalInfo> {
        None
    }
    fn mac(&self) -> &MacPolicy {
        &self.mac
    }
    fn program_name(&self, id: ProgramId) -> String {
        self.programs.resolve(id).to_owned()
    }
    fn state_get(&self, _key: u64) -> Option<u64> {
        None
    }
    fn state_set(&mut self, _key: u64, _value: u64) {}
    fn state_unset(&mut self, _key: u64) {}
    fn cache_get(&self, _slot: u8) -> Option<u64> {
        None
    }
    fn cache_put(&mut self, _slot: u8, _value: u64) {}
    fn now(&self) -> u64 {
        0
    }
}

/// One worker observation: which snapshot generation produced which
/// verdict for which object label.
struct Observation {
    generation: u64,
    label: usize,
    denied: bool,
}

#[test]
fn concurrent_stress_with_hot_reloads_has_no_torn_reads() {
    stress_with_hot_reloads(OptLevel::Full);
}

/// The same stress at RULESETC: every reload rebuilds the compiled
/// dispatch artifact, and a verdict must come from exactly one
/// generation's artifact — a torn or stale dispatch table would
/// misroute the walk and break the per-generation verdict mapping.
#[test]
fn rulesetc_stress_rebuilds_dispatch_atomically_per_generation() {
    stress_with_hot_reloads(OptLevel::RulesetC);
}

fn stress_with_hot_reloads(level: OptLevel) {
    let fw = Arc::new(ProcessFirewall::new(level));
    // Generation → variant map. The initial install and every reload
    // record which ruleset each published generation carries.
    let published: Mutex<HashMap<u64, usize>> = Mutex::new(HashMap::new());

    {
        let mut env = Env::new();
        let lines = variant_lines(0);
        fw.install_all(
            lines.iter().map(String::as_str),
            &mut env.mac,
            &mut env.programs,
        )
        .unwrap();
        published.lock().unwrap().insert(fw.generation(), 0);
    }

    // Workers + reloader + the main thread all line up on the barrier.
    let start = Barrier::new(WORKERS + 2);
    let done = AtomicBool::new(false);
    let observations: Vec<Vec<Observation>> = std::thread::scope(|s| {
        // The reloader: flip between the two variants until the workers
        // finish, but always at least MIN_RELOADS times so the workers
        // genuinely race against swaps.
        let reloader = {
            let fw = Arc::clone(&fw);
            let done = &done;
            let published = &published;
            let start = &start;
            s.spawn(move || {
                let mut env = Env::new();
                start.wait();
                let mut n = 0u64;
                while !done.load(Ordering::Relaxed) || n < MIN_RELOADS {
                    let variant = ((n + 1) % 2) as usize; // 1, 0, 1, 0, ...
                    let lines = variant_lines(variant);
                    let (_count, generation) = fw
                        .reload(
                            lines.iter().map(String::as_str),
                            &mut env.mac,
                            &mut env.programs,
                        )
                        .expect("hot reload");
                    published.lock().unwrap().insert(generation, variant);
                    n += 1;
                    std::thread::yield_now();
                }
                n
            })
        };

        let workers: Vec<_> = (0..WORKERS)
            .map(|w| {
                let fw = Arc::clone(&fw);
                let start = &start;
                s.spawn(move || {
                    let mut env = Env::new();
                    let mut session = TaskSession::new();
                    let mut seen = Vec::with_capacity(INVOCATIONS_PER_WORKER);
                    start.wait();
                    for i in 0..INVOCATIONS_PER_WORKER {
                        let label = (w + i) % 2;
                        env.current = label;
                        let d = session.evaluate(&fw, &mut env, LsmOperation::FileOpen);
                        seen.push(Observation {
                            generation: d.generation,
                            label,
                            denied: d.verdict == Verdict::Deny,
                        });
                    }
                    seen
                })
            })
            .collect();

        start.wait();
        let observations: Vec<Vec<Observation>> =
            workers.into_iter().map(|h| h.join().unwrap()).collect();
        done.store(true, Ordering::Relaxed);
        let reloads = reloader.join().unwrap();
        assert!(reloads >= MIN_RELOADS);
        observations
    });

    // Property 1: every verdict is attributable to exactly one
    // published generation and matches that generation's ruleset.
    let published = published.into_inner().unwrap();
    let mut generations_seen = std::collections::HashSet::new();
    for obs in observations.iter().flatten() {
        let variant = published
            .get(&obs.generation)
            .unwrap_or_else(|| panic!("verdict from unpublished generation {}", obs.generation));
        let expect_deny = obs.label == *variant;
        assert_eq!(
            obs.denied,
            expect_deny,
            "torn read: generation {} (variant {}) gave {} for label {}",
            obs.generation,
            variant,
            if obs.denied { "DENY" } else { "ALLOW" },
            LABELS[obs.label]
        );
        generations_seen.insert(obs.generation);
    }
    assert!(
        !generations_seen.is_empty(),
        "workers recorded no generations"
    );

    // Property 2: the global counter invariant. Only the workers
    // evaluate, so invocations is exactly WORKERS * INVOCATIONS_PER_WORKER.
    let m = fw.metrics();
    assert_eq!(m.invocations(), (WORKERS * INVOCATIONS_PER_WORKER) as u64);
    assert_eq!(
        m.drops() + m.accepts() + m.default_allows(),
        m.invocations(),
        "lost counter updates under contention"
    );

    // At RULESETC the workers must actually have gone through the
    // compiled artifact (at minimum on every per-generation cache
    // miss), and never through the degradation fallback.
    if level == OptLevel::RulesetC {
        assert!(m.rulesetc_dispatch() > 0, "no compiled dispatch ran");
        assert_eq!(m.rulesetc_fallback(), 0, "fault-free run fell back");
    } else {
        assert_eq!(m.rulesetc_dispatch(), 0);
    }
}

/// A session pinned before a reload must keep evaluating under its old
/// snapshot even while other sessions see the new one — and both
/// must stay internally consistent for the whole overlap.
#[test]
fn pinned_sessions_and_fresh_sessions_coexist_across_reload() {
    pinned_and_fresh_coexist(OptLevel::Full);
}

/// At RULESETC the pinned session keeps evaluating through the **old**
/// generation's compiled artifact (its snapshot owns the artifact, so
/// the reload's rebuild cannot be observed mid-walk), while fresh
/// sessions dispatch through the new one.
#[test]
fn rulesetc_pinned_sessions_keep_the_old_compiled_artifact() {
    pinned_and_fresh_coexist(OptLevel::RulesetC);
}

fn pinned_and_fresh_coexist(level: OptLevel) {
    let fw = ProcessFirewall::new(level);
    let mut env = Env::new();
    fw.install_all(
        variant_lines(0).iter().map(String::as_str),
        &mut env.mac,
        &mut env.programs,
    )
    .unwrap();

    let mut pinned = TaskSession::new();
    let old_gen = pinned.pin(&fw);

    let (_, new_gen) = fw
        .reload(
            variant_lines(1).iter().map(String::as_str),
            &mut env.mac,
            &mut env.programs,
        )
        .unwrap();
    assert!(new_gen > old_gen);

    let mut fresh = TaskSession::new();
    for _ in 0..100 {
        env.current = 0; // tmp_t: dropped by variant 0, allowed by variant 1
        let d_old = pinned.evaluate_pinned(&fw, &mut env, LsmOperation::FileOpen);
        assert_eq!((d_old.generation, d_old.verdict), (old_gen, Verdict::Deny));
        let d_new = fresh.evaluate(&fw, &mut env, LsmOperation::FileOpen);
        assert_eq!((d_new.generation, d_new.verdict), (new_gen, Verdict::Allow));

        env.current = 1; // etc_t: the mirror image
        let d_old = pinned.evaluate_pinned(&fw, &mut env, LsmOperation::FileOpen);
        assert_eq!((d_old.generation, d_old.verdict), (old_gen, Verdict::Allow));
        let d_new = fresh.evaluate(&fw, &mut env, LsmOperation::FileOpen);
        assert_eq!((d_new.generation, d_new.verdict), (new_gen, Verdict::Deny));
    }
    if level == OptLevel::RulesetC {
        assert!(fw.metrics().rulesetc_dispatch() > 0);
        assert_eq!(fw.metrics().rulesetc_fallback(), 0);
    }
}

/// Hot reload × RULESETC × throttle state: a QUOTA rule whose text is
/// unchanged across a reload must keep its bucket (consumed grants
/// survive), even though the compiled dispatch artifact is rebuilt from
/// scratch — the impure rule evaluates live against carried-over state
/// through the new artifact.
#[test]
fn rulesetc_reload_carries_throttle_state_for_unchanged_rules() {
    let fw = ProcessFirewall::new(OptLevel::RulesetC);
    let mut env = Env::new();
    let quota = "pftables -o FILE_OPEN -d tmp_t -j QUOTA --limit 3 --window 512 --exceed drop";
    fw.install_all([quota], &mut env.mac, &mut env.programs)
        .unwrap();

    let mut session = TaskSession::new();
    env.current = 0; // tmp_t
    for i in 0..2 {
        let d = session.evaluate(&fw, &mut env, LsmOperation::FileOpen);
        assert_eq!(d.verdict, Verdict::Allow, "grant {i} within quota");
    }

    // Reload keeps the quota rule's text identical and adds one
    // unrelated rule, so the artifact rebuilds but the bucket carries.
    let extra = "pftables -o FILE_OPEN -d etc_t -j DROP";
    fw.reload([quota, extra], &mut env.mac, &mut env.programs)
        .unwrap();

    let d3 = session.evaluate(&fw, &mut env, LsmOperation::FileOpen);
    assert_eq!(d3.verdict, Verdict::Allow, "third grant exhausts the quota");
    let d4 = session.evaluate(&fw, &mut env, LsmOperation::FileOpen);
    assert_eq!(
        d4.verdict,
        Verdict::Deny,
        "the carried bucket must remember the pre-reload grants"
    );

    // The new artifact routes the new rule too.
    env.current = 1; // etc_t
    let d = session.evaluate(&fw, &mut env, LsmOperation::FileOpen);
    assert_eq!(d.verdict, Verdict::Deny);

    // A reload that *changes* the rule text resets the bucket.
    let retuned = "pftables -o FILE_OPEN -d tmp_t -j QUOTA --limit 4 --window 512 --exceed drop";
    fw.reload([retuned, extra], &mut env.mac, &mut env.programs)
        .unwrap();
    env.current = 0;
    let d = session.evaluate(&fw, &mut env, LsmOperation::FileOpen);
    assert_eq!(d.verdict, Verdict::Allow, "fresh bucket after text change");

    let m = fw.metrics();
    assert!(m.rulesetc_dispatch() > 0);
    assert_eq!(m.rulesetc_fallback(), 0);
}
