//! Fleet-scale soak: sharded kernels, one shared firewall, racing
//! reloads — and the bounded-log-sink invariants that make the fleet
//! observable without leaking.
//!
//! Three properties, each a regression guard for a bug the fleet
//! harness (`table7_fleet`) originally exposed:
//!
//! 1. **Exact log/event accounting under churn.** With N kernel shards
//!    hammering one firewall while a reloader hot-swaps the rule base
//!    and a collector drains concurrently, every record is accounted
//!    for at quiescence: `emitted == drained + dropped`, every drain's
//!    gap marker agrees with its `dropped_since_last`, and the sum of
//!    those deltas is exactly the global drop counter. Decisions are
//!    never torn: `/etc/shadow` is denied and `/etc/passwd` allowed
//!    under *every* snapshot both reload variants publish, and a raw
//!    session's observed generations never go backwards.
//! 2. **Memory bounded under flood.** A producer that outruns its
//!    collector loses the oldest records to overwrite — the buffered
//!    count never exceeds the configured capacity, no matter how many
//!    records are emitted (the old sink grew without bound).
//! 3. **Sharded chain-detail parity.** The per-rule counter maps are
//!    sharded per recording thread and merged on export; the merged
//!    view from a multi-threaded run is identical to the pinned
//!    (single-lock) view of the same traffic.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use process_firewall::firewall::{
    ChainSnapshot, EvalEnv, ObjectInfo, SamplingMode, SignalInfo, TaskSession,
};
use process_firewall::prelude::*;
use process_firewall::types::{
    DeviceId, Gid, InodeNum, Interner, Mode, ProgramId, ResourceId, SecId, Uid,
};

const SHARDS: usize = 4;
const TASKS_PER_SHARD: usize = 16;
const ROUNDS: usize = 60;
const LOG_CAP: usize = 256;
const MIN_RELOADS: u64 = 10;

/// The two rule bases the reloader alternates between. Both variants
/// carry the LOG rule (so emission never pauses) and the shadow DROP
/// (so the no-torn-decision probe is valid under every generation);
/// the variant adds one rule so each reload genuinely changes the base.
fn soak_rules(variant: bool) -> Vec<String> {
    let mut lines = vec![
        "pftables -o FILE_OPEN -j LOG --tag soak".to_owned(),
        "pftables -o FILE_OPEN -d shadow_t -j DROP".to_owned(),
    ];
    if variant {
        lines.push("pftables -o DIR_SEARCH -d shadow_t -j DROP".to_owned());
    }
    lines
}

/// N kernel shards sharing shard 0's firewall, each with its own
/// resident tasks. Every shard installs the same lines through its own
/// interners first (deterministic interning keeps all worlds aligned),
/// exactly as the `pf_bench::fleet` harness builds its worlds.
fn build_shards() -> (Vec<Kernel>, Arc<ProcessFirewall>, Vec<Vec<Pid>>) {
    let mut shards = Vec::with_capacity(SHARDS);
    let mut residents = Vec::with_capacity(SHARDS);
    for s in 0..SHARDS {
        let mut k = standard_world();
        let lines = soak_rules(false);
        k.install_rules(lines.iter().map(String::as_str)).unwrap();
        let pids: Vec<Pid> = (0..TASKS_PER_SHARD)
            .map(|t| {
                k.spawn(
                    "init_t",
                    &format!("/usr/bin/fleetd-{s}-{t}"),
                    Uid::ROOT,
                    Gid::ROOT,
                )
            })
            .collect();
        shards.push(k);
        residents.push(pids);
    }
    let shared = Arc::clone(&shards[0].firewall);
    for k in shards.iter_mut().skip(1) {
        k.set_firewall(Arc::clone(&shared));
    }
    (shards, shared, residents)
}

/// Minimal raw-session environment for the generation-monotonicity
/// probe (same shape as the concurrent_engine stress env).
struct ProbeEnv {
    mac: process_firewall::mac::MacPolicy,
    programs: Interner,
    subject: SecId,
    program: ProgramId,
    object: ObjectInfo,
}

impl ProbeEnv {
    fn new() -> Self {
        let mac = ubuntu_mini();
        let mut programs = Interner::new();
        let subject = mac.lookup_label("init_t").unwrap();
        let program = programs.intern("/usr/bin/probe");
        let object = ObjectInfo {
            sid: mac.lookup_label("etc_t").unwrap(),
            resource: ResourceId::File {
                dev: DeviceId(0),
                ino: InodeNum(7),
            },
            owner: Uid(0),
            group: Gid(0),
            mode: Mode::FILE_DEFAULT,
        };
        ProbeEnv {
            mac,
            programs,
            subject,
            program,
            object,
        }
    }
}

impl EvalEnv for ProbeEnv {
    fn subject_sid(&self) -> SecId {
        self.subject
    }
    fn program(&self) -> ProgramId {
        self.program
    }
    fn pid(&self) -> Pid {
        Pid(1)
    }
    fn unwind_entrypoint(&mut self) -> Option<(ProgramId, u64)> {
        Some((self.program, 0x100))
    }
    fn object(&self) -> Option<ObjectInfo> {
        Some(self.object)
    }
    fn link_target_owner(&mut self) -> Option<Uid> {
        None
    }
    fn syscall_arg(&self, _idx: usize) -> u64 {
        0
    }
    fn signal(&self) -> Option<SignalInfo> {
        None
    }
    fn mac(&self) -> &process_firewall::mac::MacPolicy {
        &self.mac
    }
    fn program_name(&self, id: ProgramId) -> String {
        self.programs.resolve(id).to_owned()
    }
    fn state_get(&self, _key: u64) -> Option<u64> {
        None
    }
    fn state_set(&mut self, _key: u64, _value: u64) {}
    fn state_unset(&mut self, _key: u64) {}
    fn cache_get(&self, _slot: u8) -> Option<u64> {
        None
    }
    fn cache_put(&mut self, _slot: u8, _value: u64) {}
    fn now(&self) -> u64 {
        0
    }
}

/// One shard's traffic round: every resident opens `/etc/passwd`
/// (always allowed — a torn snapshot that denied it would panic here)
/// and probes `/etc/shadow` (always a firewall denial — a torn
/// snapshot that lost the DROP rule would let root's DAC through).
fn drive_shard(k: &mut Kernel, pids: &[Pid]) {
    for &pid in pids {
        let fd = k
            .open(pid, "/etc/passwd", OpenFlags::rdonly())
            .expect("passwd open allowed under every generation");
        k.read(pid, fd).unwrap();
        k.close(pid, fd).unwrap();

        let err = k
            .open(pid, "/etc/shadow", OpenFlags::rdonly())
            .expect_err("shadow open denied under every generation");
        assert!(
            err.is_firewall_denial(),
            "shadow denial must come from the firewall, not DAC: {err:?}"
        );
    }
}

#[test]
fn fleet_soak_exact_accounting_under_racing_reloads() {
    let (mut shards, shared, residents) = build_shards();
    shared.set_log_capacity(LOG_CAP);
    shared.events().set_sampling(SamplingMode::OneIn(4));
    let gen0 = shared.generation();

    let stop = AtomicBool::new(false);
    let reloads = AtomicU64::new(0);
    let buffered_max = AtomicU64::new(0);
    let drained_records = AtomicU64::new(0);
    let dropped_deltas = AtomicU64::new(0);
    let events_seen = AtomicU64::new(0);
    // Workers + reloader + collector + probe + main.
    let start = Barrier::new(SHARDS + 4);

    std::thread::scope(|s| {
        // The reloader: alternate the two variants until the workers
        // finish, but at least MIN_RELOADS times. A private world
        // supplies aligned interners for the parse.
        {
            let shared = Arc::clone(&shared);
            let (stop, reloads, start) = (&stop, &reloads, &start);
            s.spawn(move || {
                let mut rk = standard_world();
                start.wait();
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) || n < MIN_RELOADS {
                    let lines = soak_rules(n.is_multiple_of(2));
                    shared
                        .reload(
                            lines.iter().map(String::as_str),
                            &mut rk.mac,
                            &mut rk.programs,
                        )
                        .expect("hot reload");
                    n += 1;
                    reloads.store(n, Ordering::Relaxed);
                    std::thread::yield_now();
                }
            });
        }

        // The collector: drain logs and events concurrently, keeping
        // the per-drain books (gap marker agrees with the delta; the
        // deltas sum to the global drop counter — checked at the end).
        {
            let shared = Arc::clone(&shared);
            let (stop, start) = (&stop, &start);
            let (buffered_max, drained_records) = (&buffered_max, &drained_records);
            let (dropped_deltas, events_seen) = (&dropped_deltas, &events_seen);
            s.spawn(move || {
                start.wait();
                while !stop.load(Ordering::Relaxed) {
                    buffered_max.fetch_max(shared.log_count() as u64, Ordering::Relaxed);
                    let d = shared.drain_logs();
                    assert_eq!(
                        d.gap,
                        d.dropped_since_last > 0,
                        "gap marker must agree with the drop delta"
                    );
                    drained_records.fetch_add(d.entries.len() as u64, Ordering::Relaxed);
                    dropped_deltas.fetch_add(d.dropped_since_last, Ordering::Relaxed);
                    events_seen.fetch_add(shared.events().drain().len() as u64, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            });
        }

        // The raw-session probe: generations observed by one task's
        // session never go backwards across the reload churn.
        {
            let shared = Arc::clone(&shared);
            let (stop, start) = (&stop, &start);
            s.spawn(move || {
                let mut env = ProbeEnv::new();
                let mut session = TaskSession::new();
                let mut last = 0u64;
                start.wait();
                while !stop.load(Ordering::Relaxed) {
                    let d = session.evaluate(&shared, &mut env, LsmOperation::FileOpen);
                    assert!(
                        d.generation >= last,
                        "session generation went backwards: {} after {}",
                        d.generation,
                        last
                    );
                    last = d.generation;
                    std::thread::yield_now();
                }
            });
        }

        // The fleet: one worker per shard.
        let workers: Vec<_> = shards
            .iter_mut()
            .zip(&residents)
            .map(|(k, pids)| {
                let start = &start;
                s.spawn(move || {
                    start.wait();
                    for _ in 0..ROUNDS {
                        drive_shard(k, pids);
                    }
                })
            })
            .collect();

        start.wait();
        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Tail drain: whatever the collector had not picked up yet.
    let tail = shared.drain_logs();
    assert_eq!(tail.gap, tail.dropped_since_last > 0);
    drained_records.fetch_add(tail.entries.len() as u64, Ordering::Relaxed);
    dropped_deltas.fetch_add(tail.dropped_since_last, Ordering::Relaxed);
    events_seen.fetch_add(shared.events().drain().len() as u64, Ordering::Relaxed);

    let sink = shared.log_sink();
    let opens = (SHARDS * TASKS_PER_SHARD * ROUNDS * 2) as u64; // passwd + shadow
    assert!(
        sink.emitted() >= opens,
        "every open traverses the LOG rule: {} emitted < {} opens",
        sink.emitted(),
        opens
    );
    assert_eq!(
        sink.emitted(),
        sink.drained() + sink.dropped(),
        "exact log accounting at quiescence"
    );
    assert_eq!(
        drained_records.load(Ordering::Relaxed),
        sink.drained(),
        "collector saw every drained record"
    );
    assert_eq!(
        dropped_deltas.load(Ordering::Relaxed),
        sink.dropped(),
        "per-drain drop deltas sum to the global drop counter"
    );
    assert_eq!(shared.log_count(), 0, "tail drain emptied the sink");
    assert!(
        buffered_max.load(Ordering::Relaxed) <= LOG_CAP as u64,
        "buffered records never exceed the configured capacity"
    );

    let plane = shared.events();
    assert_eq!(
        plane.emitted(),
        plane.drained() + plane.dropped(),
        "exact event accounting at quiescence"
    );
    assert_eq!(events_seen.load(Ordering::Relaxed), plane.drained());

    let n = reloads.load(Ordering::Relaxed);
    assert!(n >= MIN_RELOADS, "only {n} reloads raced the fleet");
    assert_eq!(
        shared.generation() - gen0,
        n,
        "each reload publishes exactly one generation"
    );
}

/// The regression the bounded sink exists for: a producer that is never
/// drained must plateau at the configured capacity — overwriting the
/// oldest records and counting every loss — not grow without bound.
#[test]
fn log_sink_memory_bounded_under_sustained_flood() {
    const CAP: usize = 512;
    const OPENS: usize = 6_000;

    let mut k = standard_world();
    k.install_rules(["pftables -o FILE_OPEN -j LOG --tag flood"])
        .unwrap();
    k.firewall.set_log_capacity(CAP);
    let pid = k.spawn("init_t", "/sbin/init", Uid::ROOT, Gid::ROOT);

    for i in 0..OPENS {
        let fd = k.open(pid, "/etc/passwd", OpenFlags::rdonly()).unwrap();
        k.close(pid, fd).unwrap();
        if i % 250 == 0 {
            assert!(
                k.firewall.log_count() <= CAP,
                "sink grew past capacity mid-flood: {} > {CAP}",
                k.firewall.log_count()
            );
        }
    }

    let sink = k.firewall.log_sink();
    let emitted = sink.emitted();
    assert!(emitted >= OPENS as u64);
    assert_eq!(k.firewall.log_count(), CAP, "flooded sink sits at capacity");
    assert_eq!(
        sink.dropped(),
        emitted - CAP as u64,
        "overwrite-oldest: everything not buffered was counted as dropped"
    );

    let d = k.firewall.drain_logs();
    assert_eq!(d.entries.len(), CAP);
    assert!(d.gap, "a lapped ring must hand the collector a gap marker");
    assert_eq!(d.dropped_since_last, emitted - CAP as u64);
    assert_eq!(sink.emitted(), sink.drained() + sink.dropped());
    assert_eq!(k.firewall.log_count(), 0);

    // Quiet after the drain: the next drain reports no gap.
    let d2 = k.firewall.drain_logs();
    assert!(d2.entries.is_empty());
    assert!(!d2.gap);
}

/// Identical traffic recorded through pinned (single-lock) and sharded
/// per-rule counter maps must export identically: same chains, same
/// per-rule tallies, stable order.
#[test]
fn sharded_chain_detail_export_matches_pinned() {
    fn run(pinned: bool) -> Vec<(String, ChainSnapshot)> {
        let (mut shards, shared, residents) = build_shards();
        shared.metrics().set_detailed(true);
        shared.metrics().set_chain_shards_pinned(pinned);

        let start = Barrier::new(SHARDS);
        std::thread::scope(|s| {
            for (k, pids) in shards.iter_mut().zip(&residents) {
                let start = &start;
                s.spawn(move || {
                    start.wait();
                    for _ in 0..20 {
                        drive_shard(k, pids);
                    }
                });
            }
        });

        let m = shared.metrics();
        m.chains_seen()
            .into_iter()
            .map(|c| {
                let snap = m.chain_snapshot(&c).expect("seen chain has a snapshot");
                (c.name(), snap)
            })
            .collect()
    }

    let sharded = run(false);
    let pinned = run(true);
    assert!(!sharded.is_empty(), "the traffic recorded per-rule detail");
    assert_eq!(
        sharded, pinned,
        "merged sharded export must equal the single-lock export"
    );
}
