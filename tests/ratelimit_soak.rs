//! Overload soak for the RATELIMIT token-bucket subsystem.
//!
//! Eight worker threads hammer ONE shared bucket (`--per subject`, all
//! workers present the same subject) through one shared
//! [`ProcessFirewall`] while a reloader thread keeps re-submitting the
//! identical ruleset (`pftables-restore`-style no-op reloads). The
//! assertions are exact token accounting — the properties the packed
//! CAS word and the snapshot carryover promise:
//!
//! 1. **No lost or duplicated tokens.** With the virtual clock frozen,
//!    the total number of ALLOW verdicts across all workers is exactly
//!    the configured burst — not one more (a torn read or double-spend
//!    would overshoot), not one fewer (a lost CAS would undershoot).
//! 2. **Reload carryover.** The racing reloads never reset the bucket:
//!    an unchanged rule keeps its in-flight state across every swap.
//! 3. **Refill exactness.** Advancing the clock a full period grants
//!    exactly one more burst (refill accrues but caps at burst).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use process_firewall::firewall::{
    EvalEnv, ObjectInfo, OptLevel, ProcessFirewall, SignalInfo, TaskSession,
};
use process_firewall::mac::{ubuntu_mini, MacPolicy};
use process_firewall::types::{
    DeviceId, Gid, InodeNum, Interner, LsmOperation, Mode, Pid, ProgramId, ResourceId, SecId, Uid,
    Verdict,
};

const WORKERS: usize = 8;
const INVOCATIONS_PER_WORKER: usize = 2_000;
const BURST: u64 = 64;
const MIN_RELOADS: u64 = 20;

const RULE: &str = "pftables -o FILE_OPEN -j RATELIMIT --rate 512 --burst 64 \
     --per subject --exceed drop";

/// Minimal environment sharing one atomic virtual clock: every thread's
/// `now()` reads the same counter, so a frozen clock is frozen for all.
struct Env {
    mac: MacPolicy,
    programs: Interner,
    subject: SecId,
    program: ProgramId,
    object: ObjectInfo,
    clock: Arc<AtomicU64>,
}

impl Env {
    fn new(clock: Arc<AtomicU64>) -> Self {
        let mac = ubuntu_mini();
        let mut programs = Interner::new();
        let subject = mac.lookup_label("httpd_t").unwrap();
        let program = programs.intern("/usr/bin/apache2");
        let sid = mac.lookup_label("etc_t").unwrap();
        Env {
            mac,
            programs,
            subject,
            program,
            object: ObjectInfo {
                sid,
                resource: ResourceId::File {
                    dev: DeviceId(0),
                    ino: InodeNum(5),
                },
                owner: Uid(0),
                group: Gid(0),
                mode: Mode::FILE_DEFAULT,
            },
            clock,
        }
    }
}

impl EvalEnv for Env {
    fn subject_sid(&self) -> SecId {
        self.subject
    }
    fn program(&self) -> ProgramId {
        self.program
    }
    fn pid(&self) -> Pid {
        Pid(1)
    }
    fn unwind_entrypoint(&mut self) -> Option<(ProgramId, u64)> {
        Some((self.program, 0x100))
    }
    fn object(&self) -> Option<ObjectInfo> {
        Some(self.object)
    }
    fn link_target_owner(&mut self) -> Option<Uid> {
        None
    }
    fn syscall_arg(&self, _idx: usize) -> u64 {
        0
    }
    fn signal(&self) -> Option<SignalInfo> {
        None
    }
    fn mac(&self) -> &MacPolicy {
        &self.mac
    }
    fn program_name(&self, id: ProgramId) -> String {
        self.programs.resolve(id).to_owned()
    }
    fn state_get(&self, _key: u64) -> Option<u64> {
        None
    }
    fn state_set(&mut self, _key: u64, _value: u64) {}
    fn state_unset(&mut self, _key: u64) {}
    fn cache_get(&self, _slot: u8) -> Option<u64> {
        None
    }
    fn cache_put(&mut self, _slot: u8, _value: u64) {}
    fn now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }
}

fn install(fw: &ProcessFirewall, clock: &Arc<AtomicU64>, lines: &[&str]) {
    let mut env = Env::new(Arc::clone(clock));
    fw.install_all(lines.iter().copied(), &mut env.mac, &mut env.programs)
        .unwrap();
}

/// Runs one frozen-clock contention round: 8 workers evaluating against
/// the shared bucket while the reloader re-submits the same rule text.
/// Returns the total ALLOW count across all workers.
fn contention_round(fw: &Arc<ProcessFirewall>, clock: &Arc<AtomicU64>) -> u64 {
    let start = Barrier::new(WORKERS + 2);
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let reloader = {
            let fw = Arc::clone(fw);
            let clock = Arc::clone(clock);
            let (done, start) = (&done, &start);
            s.spawn(move || {
                let mut env = Env::new(clock);
                start.wait();
                let mut n = 0u64;
                while !done.load(Ordering::Relaxed) || n < MIN_RELOADS {
                    fw.reload([RULE], &mut env.mac, &mut env.programs)
                        .expect("hot reload");
                    n += 1;
                    std::thread::yield_now();
                }
                n
            })
        };

        let workers: Vec<_> = (0..WORKERS)
            .map(|_| {
                let fw = Arc::clone(fw);
                let clock = Arc::clone(clock);
                let start = &start;
                s.spawn(move || {
                    let mut env = Env::new(clock);
                    let mut session = TaskSession::new();
                    let mut allows = 0u64;
                    start.wait();
                    for _ in 0..INVOCATIONS_PER_WORKER {
                        let d = session.evaluate(&fw, &mut env, LsmOperation::FileOpen);
                        match d.verdict {
                            Verdict::Allow => allows += 1,
                            Verdict::Deny => {}
                        }
                    }
                    allows
                })
            })
            .collect();

        start.wait();
        let allows: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();
        done.store(true, Ordering::Relaxed);
        assert!(reloader.join().unwrap() >= MIN_RELOADS);
        allows
    })
}

#[test]
fn shared_bucket_under_8_thread_contention_grants_exactly_burst() {
    let clock = Arc::new(AtomicU64::new(0));
    let fw = Arc::new(ProcessFirewall::new(OptLevel::EptSpc));
    install(&fw, &clock, &[RULE]);

    // Phase 1: frozen clock — the fresh bucket grants exactly BURST
    // tokens across all workers, racing reloads notwithstanding.
    let allows = contention_round(&fw, &clock);
    assert_eq!(
        allows, BURST,
        "phase 1: exactly the burst must be granted under contention"
    );

    // Phase 2: advance the clock one full refill period (1024 ticks at
    // rate 512 accrues 512 tokens, capped at burst 64) and soak again —
    // exactly one more burst.
    clock.store(1024, Ordering::Relaxed);
    let allows = contention_round(&fw, &clock);
    assert_eq!(
        allows, BURST,
        "phase 2: refill caps at burst; exactly one more burst granted"
    );

    // The always-on counter saw every denial.
    let total = (WORKERS * INVOCATIONS_PER_WORKER * 2) as u64;
    assert_eq!(fw.metrics().ratelimit_throttled(), total - 2 * BURST);
}

#[test]
fn noop_reload_preserves_partial_bucket_state() {
    let clock = Arc::new(AtomicU64::new(0));
    let fw = ProcessFirewall::new(OptLevel::EptSpc);
    install(&fw, &clock, &[RULE]);
    let mut env = Env::new(Arc::clone(&clock));
    let mut session = TaskSession::new();

    // Consume part of the burst...
    let consumed = 10u64;
    for _ in 0..consumed {
        let d = session.evaluate(&fw, &mut env, LsmOperation::FileOpen);
        assert_eq!(d.verdict, Verdict::Allow);
    }

    // ...re-submit the identical ruleset (a no-op hot reload)...
    fw.reload([RULE], &mut env.mac, &mut env.programs).unwrap();

    // ...and the remaining budget is exactly what was left, not a
    // fresh burst: the unchanged rule carried its bucket across.
    let mut remaining = 0u64;
    for _ in 0..(BURST * 2) {
        let d = session.evaluate(&fw, &mut env, LsmOperation::FileOpen);
        if d.verdict == Verdict::Allow {
            remaining += 1;
        }
    }
    assert_eq!(
        remaining,
        BURST - consumed,
        "no-op reload must neither reset nor leak bucket state"
    );
}

#[test]
fn changed_rule_at_same_position_starts_a_fresh_bucket() {
    let clock = Arc::new(AtomicU64::new(0));
    let fw = ProcessFirewall::new(OptLevel::EptSpc);
    install(&fw, &clock, &[RULE]);
    let mut env = Env::new(Arc::clone(&clock));
    let mut session = TaskSession::new();

    // Exhaust the original bucket completely.
    let mut allows = 0u64;
    for _ in 0..(BURST * 2) {
        if session
            .evaluate(&fw, &mut env, LsmOperation::FileOpen)
            .verdict
            == Verdict::Allow
        {
            allows += 1;
        }
    }
    assert_eq!(allows, BURST);

    // Replace the rule at the same chain position with different
    // parameters: state must NOT leak from the old rule.
    const CHANGED: &str = "pftables -o FILE_OPEN -j RATELIMIT --rate 512 --burst 32 \
         --per subject --exceed drop";
    fw.reload([CHANGED], &mut env.mac, &mut env.programs)
        .unwrap();

    let mut fresh = 0u64;
    for _ in 0..(BURST * 2) {
        if session
            .evaluate(&fw, &mut env, LsmOperation::FileOpen)
            .verdict
            == Verdict::Allow
        {
            fresh += 1;
        }
    }
    assert_eq!(
        fresh, 32,
        "a changed rule gets a fresh bucket with its own burst"
    );
}
