#![warn(missing_docs)]

//! # process-firewall
//!
//! A complete, user-space reproduction of **"Process Firewalls:
//! Protecting Processes During Resource Access"** (Vijayakumar,
//! Schiffman, Jaeger — EuroSys 2013).
//!
//! The Process Firewall is to the system-call interface what a network
//! firewall is to the network: a rule engine that *protects* processes
//! (rather than confining them) by blocking resource accesses that match
//! attack-specific invariants — untrusted search paths, untrusted
//! library loads, file/IPC squatting, PHP file inclusion, directory
//! traversal, link following, TOCTTOU races, and signal races.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `pf-types` | labels, ids, operations, verdicts, the attack taxonomy |
//! | [`vfs`] | `pf-vfs` | in-memory VFS: inodes, symlinks, DAC, per-component resolution, inode recycling |
//! | [`mac`] | `pf-mac` | SELinux-style MAC policy + adversary accessibility |
//! | [`os`] | `pf-os` | kernel simulator: tasks, syscalls, signals, LSM hooks, `ld.so`, interpreters |
//! | [`firewall`] | `pf-core` | **the paper's contribution**: `pftables` language, chains, engine, context/match/target modules |
//! | [`rulegen`] | `pf-rulegen` | trace classification, threshold analysis (Table 8), rule templates |
//! | [`sting`] | `pf-sting` | STING-style dynamic vulnerability tester (record surface → plant → confirm → derive rule) |
//! | [`attacks`] | `pf-attacks` | exploits E1–E9, the `safe_open` family, the Apache model, macro workloads |
//!
//! # Quickstart
//!
//! ```
//! use process_firewall::os::{standard_world, OpenFlags};
//! use process_firewall::types::{Gid, Uid};
//!
//! // Build an Ubuntu-flavoured world and protect /tmp link-following.
//! let mut kernel = standard_world();
//! kernel
//!     .install_rules([process_firewall::attacks::ruleset::SAFE_OPEN])
//!     .unwrap();
//!
//! // An adversary plants a symlink trap in /tmp...
//! let adversary = kernel.spawn("user_t", "/bin/sh", Uid(1000), Gid(1000));
//! kernel.symlink(adversary, "/etc/shadow", "/tmp/report").unwrap();
//!
//! // ...and the victim's open is dropped by the firewall, not by luck.
//! let victim = kernel.spawn("init_t", "/sbin/init", Uid::ROOT, Gid::ROOT);
//! let err = kernel
//!     .open(victim, "/tmp/report", OpenFlags::creat(0o644))
//!     .unwrap_err();
//! assert!(err.is_firewall_denial());
//! ```

pub use pf_attacks as attacks;
pub use pf_core as firewall;
pub use pf_mac as mac;
pub use pf_os as os;
pub use pf_rulegen as rulegen;
pub use pf_sting as sting;
pub use pf_types as types;
pub use pf_vfs as vfs;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use pf_core::{LogEntry, OptLevel, ProcessFirewall};
    pub use pf_mac::{ubuntu_mini, MacPolicy};
    pub use pf_os::{standard_world, Kernel, OpenFlags};
    pub use pf_types::{Gid, LsmOperation, PfError, PfResult, Pid, SignalNum, Uid, Verdict};
    pub use pf_vfs::{AccessKind, ObjRef, Vfs};
}
